#include "gridfs/gridfs.hpp"

#include "common/serde.hpp"

namespace pg::gridfs {

namespace {

constexpr std::size_t kMaxFileSize = 32 * 1024 * 1024;
constexpr std::size_t kMaxListing = 100000;

// ---- wire formats (extension-private; core protocol untouched) ----

Bytes encode_put(BytesView token, const std::string& user,
                 const std::string& name, BytesView content) {
  BufferWriter w;
  w.put_bytes(token);
  w.put_string(user);
  w.put_string(name);
  w.put_bytes(content);
  return w.take();
}

Bytes encode_get(BytesView token, const std::string& name) {
  BufferWriter w;
  w.put_bytes(token);
  w.put_string(name);
  return w.take();
}

Bytes encode_list(BytesView token) {
  BufferWriter w;
  w.put_bytes(token);
  return w.take();
}

Bytes encode_remove(BytesView token, const std::string& user,
                    const std::string& name) {
  BufferWriter w;
  w.put_bytes(token);
  w.put_string(user);
  w.put_string(name);
  return w.take();
}

/// Replies: [ok bool][reason str][body bytes].
Bytes encode_reply(const Status& status, BytesView body = {}) {
  BufferWriter w;
  w.put_bool(status.is_ok());
  w.put_string(status.is_ok() ? "" : status.to_string());
  w.put_bytes(body);
  return w.take();
}

Result<Bytes> decode_reply(const proto::Envelope& envelope) {
  if (envelope.op != proto::OpCode::kReply)
    return error(ErrorCode::kProtocolError, "expected kReply");
  BufferReader r(envelope.payload);
  bool ok = false;
  std::string reason;
  Bytes body;
  PG_RETURN_IF_ERROR(r.get_bool(ok));
  PG_RETURN_IF_ERROR(r.get_string(reason));
  PG_RETURN_IF_ERROR(r.get_bytes(body));
  PG_RETURN_IF_ERROR(r.expect_end());
  if (!ok) return error(ErrorCode::kUnavailable, "remote gridfs: " + reason);
  return body;
}

Bytes encode_listing(const std::vector<FileInfo>& files) {
  BufferWriter w;
  w.put_varint(files.size());
  for (const auto& f : files) {
    w.put_string(f.name);
    w.put_u64(f.size);
    w.put_string(f.owner);
    w.put_u64(f.modified_at);
  }
  return w.take();
}

Result<std::vector<FileInfo>> decode_listing(BytesView data) {
  BufferReader r(data);
  std::uint64_t n = 0;
  PG_RETURN_IF_ERROR(r.get_varint(n));
  if (n > kMaxListing)
    return error(ErrorCode::kProtocolError, "listing too large");
  std::vector<FileInfo> files(n);
  for (auto& f : files) {
    PG_RETURN_IF_ERROR(r.get_string(f.name));
    PG_RETURN_IF_ERROR(r.get_u64(f.size));
    PG_RETURN_IF_ERROR(r.get_string(f.owner));
    PG_RETURN_IF_ERROR(r.get_u64(f.modified_at));
  }
  PG_RETURN_IF_ERROR(r.expect_end());
  return files;
}

telemetry::Counter& fs_counter(const std::string& name,
                               const std::string& help,
                               const std::string& site) {
  return telemetry::MetricRegistry::global().counter(name, help,
                                                     {{"site", site}});
}

}  // namespace

GridFileService::FsInstruments::FsInstruments(const std::string& site)
    : puts(fs_counter("pg_gridfs_puts_total", "Files stored at this site",
                      site)),
      gets(fs_counter("pg_gridfs_gets_total", "File reads served by this site",
                      site)),
      removes(fs_counter("pg_gridfs_removes_total",
                         "Files removed from this site", site)),
      bytes_written(fs_counter("pg_gridfs_bytes_written_total",
                               "File content bytes accepted by this site",
                               site)),
      files_stored(telemetry::MetricRegistry::global().gauge(
          "pg_gridfs_files_stored", "Files currently held by this site",
          {{"site", site}})),
      bytes_stored(telemetry::MetricRegistry::global().gauge(
          "pg_gridfs_bytes_stored",
          "File content bytes currently held by this site",
          {{"site", site}})) {}

// ---------------------------------------------------------------- attach

Result<std::unique_ptr<GridFileService>> GridFileService::attach(
    proxy::ProxyServer& proxy_server) {
  std::unique_ptr<GridFileService> service(new GridFileService(proxy_server));
  GridFileService* raw = service.get();
  PG_RETURN_IF_ERROR(proxy_server.register_extension(
      kFsPut, [raw](const proto::Envelope& env, proxy::Connection& conn) {
        return raw->handle_put(env, conn);
      }));
  PG_RETURN_IF_ERROR(proxy_server.register_extension(
      kFsGet, [raw](const proto::Envelope& env, proxy::Connection& conn) {
        return raw->handle_get(env, conn);
      }));
  PG_RETURN_IF_ERROR(proxy_server.register_extension(
      kFsList, [raw](const proto::Envelope& env, proxy::Connection& conn) {
        return raw->handle_list(env, conn);
      }));
  PG_RETURN_IF_ERROR(proxy_server.register_extension(
      kFsRemove, [raw](const proto::Envelope& env, proxy::Connection& conn) {
        return raw->handle_remove(env, conn);
      }));
  return service;
}

// ----------------------------------------------------------- local store

Status GridFileService::store_put(const std::string& user,
                                  const std::string& name, Bytes content) {
  if (name.empty())
    return error(ErrorCode::kInvalidArgument, "empty file name");
  if (content.size() > kMaxFileSize)
    return error(ErrorCode::kInvalidArgument, "file too large");
  std::lock_guard<std::mutex> lock(mutex_);
  const bool existed = files_.count(name) > 0;
  StoredFile& file = files_[name];
  if (!file.owner.empty() && file.owner != user)
    return error(ErrorCode::kPermissionDenied,
                 name + " is owned by " + file.owner);
  instruments_.bytes_stored.add(static_cast<std::int64_t>(content.size()) -
                                static_cast<std::int64_t>(file.content.size()));
  if (!existed) instruments_.files_stored.add(1);
  instruments_.puts.increment();
  instruments_.bytes_written.increment(content.size());
  file.content = std::move(content);
  file.owner = user;
  file.modified_at = proxy_.clock().now();
  return Status::ok();
}

Result<Bytes> GridFileService::store_get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(name);
  if (it == files_.end())
    return error(ErrorCode::kNotFound, "no file " + name);
  instruments_.gets.increment();
  return it->second.content;
}

std::vector<FileInfo> GridFileService::store_list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FileInfo> out;
  out.reserve(files_.size());
  for (const auto& [name, file] : files_) {
    out.push_back(FileInfo{name, file.content.size(), file.owner,
                           static_cast<std::uint64_t>(file.modified_at)});
  }
  return out;
}

Status GridFileService::store_remove(const std::string& user,
                                     const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(name);
  if (it == files_.end())
    return error(ErrorCode::kNotFound, "no file " + name);
  if (it->second.owner != user)
    return error(ErrorCode::kPermissionDenied,
                 name + " is owned by " + it->second.owner);
  instruments_.bytes_stored.add(
      -static_cast<std::int64_t>(it->second.content.size()));
  instruments_.files_stored.add(-1);
  instruments_.removes.increment();
  files_.erase(it);
  return Status::ok();
}

std::size_t GridFileService::local_file_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.size();
}

std::uint64_t GridFileService::local_bytes_stored() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, file] : files_) total += file.content.size();
  return total;
}

// ------------------------------------------------------------ client API

Status GridFileService::put(BytesView token, const std::string& user,
                            const std::string& site, const std::string& name,
                            BytesView content) {
  if (site == proxy_.site()) {
    PG_RETURN_IF_ERROR(proxy_.authenticator().authorize(
        token, "fs.write", proxy_.clock().now()));
    return store_put(user, name, Bytes(content.begin(), content.end()));
  }
  Result<proto::Envelope> reply =
      proxy_.call_peer(site, kFsPut, encode_put(token, user, name, content));
  if (!reply.is_ok()) return reply.status();
  return decode_reply(reply.value()).status();
}

Result<Bytes> GridFileService::get(BytesView token, const std::string& site,
                                   const std::string& name) {
  if (site == proxy_.site()) {
    PG_RETURN_IF_ERROR(proxy_.authenticator().authorize(
        token, "fs.read", proxy_.clock().now()));
    return store_get(name);
  }
  Result<proto::Envelope> reply =
      proxy_.call_peer(site, kFsGet, encode_get(token, name));
  if (!reply.is_ok()) return reply.status();
  return decode_reply(reply.value());
}

Result<std::vector<FileInfo>> GridFileService::list(BytesView token,
                                                    const std::string& site) {
  if (site == proxy_.site()) {
    PG_RETURN_IF_ERROR(proxy_.authenticator().authorize(
        token, "fs.read", proxy_.clock().now()));
    return store_list();
  }
  Result<proto::Envelope> reply =
      proxy_.call_peer(site, kFsList, encode_list(token));
  if (!reply.is_ok()) return reply.status();
  Result<Bytes> body = decode_reply(reply.value());
  if (!body.is_ok()) return body.status();
  return decode_listing(body.value());
}

Status GridFileService::remove(BytesView token, const std::string& user,
                               const std::string& site,
                               const std::string& name) {
  if (site == proxy_.site()) {
    PG_RETURN_IF_ERROR(proxy_.authenticator().authorize(
        token, "fs.write", proxy_.clock().now()));
    return store_remove(user, name);
  }
  Result<proto::Envelope> reply =
      proxy_.call_peer(site, kFsRemove, encode_remove(token, user, name));
  if (!reply.is_ok()) return reply.status();
  return decode_reply(reply.value()).status();
}

Result<std::vector<std::string>> GridFileService::put_replicated(
    BytesView token, const std::string& user, const std::string& name,
    BytesView content, std::size_t replicas) {
  if (replicas == 0)
    return error(ErrorCode::kInvalidArgument, "replicas must be >= 1");

  std::vector<std::string> targets = {proxy_.site()};
  for (const auto& peer : proxy_.peers()) {
    if (targets.size() >= replicas) break;
    targets.push_back(peer);
  }

  std::vector<std::string> stored;
  Status last_failure = Status::ok();
  for (const auto& site : targets) {
    const Status put_status = put(token, user, site, name, content);
    if (put_status.is_ok()) {
      stored.push_back(site);
    } else {
      last_failure = put_status;
    }
  }
  if (stored.empty())
    return error(ErrorCode::kUnavailable,
                 "no replica stored: " + last_failure.to_string());
  return stored;
}

Result<Bytes> GridFileService::get_any(BytesView token,
                                       const std::string& name) {
  std::vector<std::string> sources = {proxy_.site()};
  for (const auto& peer : proxy_.peers()) sources.push_back(peer);

  Status last_failure = Status::ok();
  for (const auto& site : sources) {
    Result<Bytes> content = get(token, site, name);
    if (content.is_ok()) return content;
    last_failure = content.status();
  }
  return error(ErrorCode::kNotFound,
               name + " not found at any site: " + last_failure.to_string());
}

// ---------------------------------------------------------- remote side

Status GridFileService::handle_put(const proto::Envelope& envelope,
                                   proxy::Connection& conn) {
  BufferReader r(envelope.payload);
  Bytes token, content;
  std::string user, name;
  Status parse = Status::ok();
  if (!(parse = r.get_bytes(token)).is_ok() ||
      !(parse = r.get_string(user)).is_ok() ||
      !(parse = r.get_string(name)).is_ok() ||
      !(parse = r.get_bytes(content)).is_ok() ||
      !(parse = r.expect_end()).is_ok()) {
    return conn.respond(envelope, proto::OpCode::kReply, encode_reply(parse));
  }

  Status verdict = proxy_.authenticator().tickets().authorize(
      token, "fs.write", proxy_.clock().now());
  if (verdict.is_ok()) verdict = store_put(user, name, std::move(content));
  return conn.respond(envelope, proto::OpCode::kReply, encode_reply(verdict));
}

Status GridFileService::handle_get(const proto::Envelope& envelope,
                                   proxy::Connection& conn) {
  BufferReader r(envelope.payload);
  Bytes token;
  std::string name;
  Status parse = Status::ok();
  if (!(parse = r.get_bytes(token)).is_ok() ||
      !(parse = r.get_string(name)).is_ok() ||
      !(parse = r.expect_end()).is_ok()) {
    return conn.respond(envelope, proto::OpCode::kReply, encode_reply(parse));
  }

  const Status verdict = proxy_.authenticator().tickets().authorize(
      token, "fs.read", proxy_.clock().now());
  if (!verdict.is_ok())
    return conn.respond(envelope, proto::OpCode::kReply,
                        encode_reply(verdict));
  Result<Bytes> content = store_get(name);
  if (!content.is_ok())
    return conn.respond(envelope, proto::OpCode::kReply,
                        encode_reply(content.status()));
  return conn.respond(envelope, proto::OpCode::kReply,
                      encode_reply(Status::ok(), content.value()));
}

Status GridFileService::handle_list(const proto::Envelope& envelope,
                                    proxy::Connection& conn) {
  BufferReader r(envelope.payload);
  Bytes token;
  Status parse = Status::ok();
  if (!(parse = r.get_bytes(token)).is_ok() ||
      !(parse = r.expect_end()).is_ok()) {
    return conn.respond(envelope, proto::OpCode::kReply, encode_reply(parse));
  }

  const Status verdict = proxy_.authenticator().tickets().authorize(
      token, "fs.read", proxy_.clock().now());
  if (!verdict.is_ok())
    return conn.respond(envelope, proto::OpCode::kReply,
                        encode_reply(verdict));
  return conn.respond(envelope, proto::OpCode::kReply,
                      encode_reply(Status::ok(), encode_listing(store_list())));
}

Status GridFileService::handle_remove(const proto::Envelope& envelope,
                                      proxy::Connection& conn) {
  BufferReader r(envelope.payload);
  Bytes token;
  std::string user, name;
  Status parse = Status::ok();
  if (!(parse = r.get_bytes(token)).is_ok() ||
      !(parse = r.get_string(user)).is_ok() ||
      !(parse = r.get_string(name)).is_ok() ||
      !(parse = r.expect_end()).is_ok()) {
    return conn.respond(envelope, proto::OpCode::kReply, encode_reply(parse));
  }

  Status verdict = proxy_.authenticator().tickets().authorize(
      token, "fs.write", proxy_.clock().now());
  if (verdict.is_ok()) verdict = store_remove(user, name);
  return conn.respond(envelope, proto::OpCode::kReply, encode_reply(verdict));
}

}  // namespace pg::gridfs
