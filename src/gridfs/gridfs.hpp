// GridFS — a distributed file service built entirely on the proxy
// architecture's extension mechanism.
//
// The paper names "distributed filing systems" as future work enabled by
// the proxy design (§1), and promises that the control protocol's codes
// "can be expanded to deal with a new situation" (§3). GridFS is that
// demonstration: put/get/list/remove across sites using three extension op
// codes and the generic kReply, with no change to the proxy core. Files
// live in per-site stores; remote operations travel over the existing GSSL
// tunnels and are authorized by the same session tickets ("fs.read" /
// "fs.write").
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/status.hpp"
#include "proxy/proxy_server.hpp"
#include "telemetry/metrics.hpp"

namespace pg::gridfs {

/// Extension op codes claimed by GridFS.
constexpr proto::OpCode kFsPut = static_cast<proto::OpCode>(1010);
constexpr proto::OpCode kFsGet = static_cast<proto::OpCode>(1011);
constexpr proto::OpCode kFsList = static_cast<proto::OpCode>(1012);
constexpr proto::OpCode kFsRemove = static_cast<proto::OpCode>(1013);

struct FileInfo {
  std::string name;
  std::uint64_t size = 0;
  std::string owner;
  std::uint64_t modified_at = 0;

  friend bool operator==(const FileInfo&, const FileInfo&) = default;
};

/// One instance per site, attached to that site's proxy. Construction
/// registers the extension handlers; the client methods transparently
/// operate on the local store or relay to the owning site's proxy.
class GridFileService {
 public:
  /// Registers handlers on `proxy_server`; fails if another extension
  /// already claimed the op codes.
  static Result<std::unique_ptr<GridFileService>> attach(
      proxy::ProxyServer& proxy_server);

  // ---- client API (token must carry fs.write / fs.read) ----
  /// Stores `content` at up to `replicas` distinct sites (this site first,
  /// then peers in name order). Returns the sites that accepted; fails only
  /// if NO site stored the file.
  Result<std::vector<std::string>> put_replicated(
      BytesView token, const std::string& user, const std::string& name,
      BytesView content, std::size_t replicas);

  /// Fetches `name` from any site that has it (this site first, then
  /// peers) — the read path for replicated files when sites fail.
  Result<Bytes> get_any(BytesView token, const std::string& name);

  Status put(BytesView token, const std::string& user,
             const std::string& site, const std::string& name,
             BytesView content);
  Result<Bytes> get(BytesView token, const std::string& site,
                    const std::string& name);
  Result<std::vector<FileInfo>> list(BytesView token, const std::string& site);
  Status remove(BytesView token, const std::string& user,
                const std::string& site, const std::string& name);

  /// Files stored at THIS site.
  std::size_t local_file_count() const;
  std::uint64_t local_bytes_stored() const;

 private:
  /// Registry instruments for this site's store, labelled {site=<name>}.
  struct FsInstruments {
    explicit FsInstruments(const std::string& site);
    telemetry::Counter& puts;
    telemetry::Counter& gets;
    telemetry::Counter& removes;
    telemetry::Counter& bytes_written;
    telemetry::Gauge& files_stored;
    telemetry::Gauge& bytes_stored;
  };

  explicit GridFileService(proxy::ProxyServer& proxy_server)
      : proxy_(proxy_server), instruments_(proxy_server.site()) {}

  struct StoredFile {
    Bytes content;
    std::string owner;
    TimeMicros modified_at = 0;
  };

  // Local-store operations (already authorized).
  Status store_put(const std::string& user, const std::string& name,
                   Bytes content);
  Result<Bytes> store_get(const std::string& name) const;
  std::vector<FileInfo> store_list() const;
  Status store_remove(const std::string& user, const std::string& name);

  // Extension handlers (remote requests arriving at this site's proxy).
  Status handle_put(const proto::Envelope& envelope, proxy::Connection& conn);
  Status handle_get(const proto::Envelope& envelope, proxy::Connection& conn);
  Status handle_list(const proto::Envelope& envelope, proxy::Connection& conn);
  Status handle_remove(const proto::Envelope& envelope,
                       proxy::Connection& conn);

  proxy::ProxyServer& proxy_;
  FsInstruments instruments_;
  mutable std::mutex mutex_;
  std::map<std::string, StoredFile> files_;
};

}  // namespace pg::gridfs
