// Dynamic scheduling simulation on the discrete-event engine.
//
// The static makespan model (makespan.hpp) evaluates one placement of one
// job; real grids schedule a *stream* of jobs, and the load-balancer's
// advantage compounds because each decision sees the queues the previous
// decisions created. This simulator drives any Scheduler with a job stream
// over virtual time and reports completion statistics — the E5 ablation.
#pragma once

#include <vector>

#include "common/clock.hpp"
#include "monitor/aggregator.hpp"
#include "sched/scheduler.hpp"

namespace pg::sched {

struct DesJob {
  TimeMicros arrival = 0;
  /// One entry per task; cost in abstract work units (a capacity-1.0 node
  /// processes one unit per virtual second).
  std::vector<double> task_costs;
};

struct DesResult {
  double mean_completion_seconds = 0;  // arrival -> last task finished
  double p95_completion_seconds = 0;
  double makespan_seconds = 0;         // until the last node goes idle
  double mean_utilization = 0;         // busy fraction across nodes
  std::size_t jobs_completed = 0;
};

/// Generates a seeded job stream: exponential-ish interarrival around
/// `mean_interarrival`, task counts in [tasks_min, tasks_max], costs in
/// [cost_min, cost_max).
std::vector<DesJob> generate_job_stream(std::size_t count,
                                        TimeMicros mean_interarrival,
                                        std::size_t tasks_min,
                                        std::size_t tasks_max,
                                        double cost_min, double cost_max,
                                        std::uint64_t seed);

/// Runs the stream against `scheduler` on the given nodes. At each arrival
/// the scheduler sees the node states produced by earlier decisions
/// (running task counts), exactly as the proxy's live status feed would
/// show them.
DesResult simulate_dynamic_schedule(std::vector<monitor::GridNode> nodes,
                                    const std::vector<DesJob>& jobs,
                                    Scheduler& scheduler);

}  // namespace pg::sched
