// Resource scheduling (paper "Resource scheduling" layer).
//
// Two policies, matching the paper's comparison:
//  * RoundRobinScheduler — "In its original form, the MPI uses the
//    round-robin method to distribute the processes among the nodes."
//  * LoadBalancedScheduler — the proxy's planned scheduler: "balanced
//    process distribution using the grid's status information."
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "monitor/aggregator.hpp"
#include "proto/messages.hpp"

namespace pg::sched {

/// Placement request constraints.
struct Constraints {
  std::uint64_t min_ram_mb = 0;   // node must have at least this free
  double max_load = 1.0;          // skip nodes loaded beyond this
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Assigns `ranks` processes to the given nodes. Nodes may receive more
  /// than one rank. Fails kUnavailable when no node satisfies the
  /// constraints.
  virtual Result<std::vector<proto::RankPlacement>> assign(
      const std::vector<monitor::GridNode>& nodes, std::uint32_t ranks,
      const Constraints& constraints) = 0;

  virtual std::string name() const = 0;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

/// Scheduling policy selector used by the job-facing APIs.
enum class Policy { kRoundRobin, kLoadBalanced };

/// Factory over Policy.
SchedulerPtr make_scheduler(Policy policy);

/// Cycles eligible nodes in (site, node)-name order, ignoring load.
SchedulerPtr make_round_robin_scheduler();

/// Greedy least-finish-time: each rank goes to the node whose projected
/// completion (existing load + already-assigned ranks, scaled by capacity)
/// is smallest. Uses the status data the proxies collect.
SchedulerPtr make_load_balanced_scheduler();

}  // namespace pg::sched
