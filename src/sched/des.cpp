#include "sched/des.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"

namespace pg::sched {

std::vector<DesJob> generate_job_stream(std::size_t count,
                                        TimeMicros mean_interarrival,
                                        std::size_t tasks_min,
                                        std::size_t tasks_max,
                                        double cost_min, double cost_max,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<DesJob> jobs;
  jobs.reserve(count);
  TimeMicros t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    // Exponential interarrival via inverse transform.
    const double u = std::max(1e-12, rng.next_double());
    t += static_cast<TimeMicros>(
        -std::log(u) * static_cast<double>(mean_interarrival));
    DesJob job;
    job.arrival = t;
    const std::size_t tasks =
        tasks_min + rng.next_below(tasks_max - tasks_min + 1);
    for (std::size_t k = 0; k < tasks; ++k) {
      job.task_costs.push_back(cost_min +
                               rng.next_double() * (cost_max - cost_min));
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

DesResult simulate_dynamic_schedule(std::vector<monitor::GridNode> nodes,
                                    const std::vector<DesJob>& jobs,
                                    Scheduler& scheduler) {
  // Per-node queue state, keyed like the scheduler's placements.
  struct NodeState {
    double available_at = 0;  // virtual seconds when the queue drains
    double busy_time = 0;     // accumulated processing time
    std::size_t queued_tasks = 0;
  };
  std::map<std::pair<std::string, std::string>, NodeState> state;
  std::map<std::pair<std::string, std::string>, monitor::GridNode*> node_of;
  for (auto& node : nodes) {
    const auto key = std::make_pair(node.site, node.status.name);
    state[key];
    node_of[key] = &node;
    node.status.running_processes = 0;
  }

  DesResult result;
  std::vector<double> completions;
  completions.reserve(jobs.size());
  double last_finish = 0;

  sim::EventQueue queue;
  for (const DesJob& job : jobs) {
    queue.schedule_at(job.arrival, [&, job_ptr = &job] {
      const DesJob& arriving = *job_ptr;
      const double now_s =
          static_cast<double>(queue.now()) / kMicrosPerSecond;

      // Refresh the snapshot the scheduler sees: queued work per node.
      for (auto& [key, node] : node_of) {
        NodeState& ns = state[key];
        // Tasks not yet finished at `now`.
        node->status.running_processes = static_cast<std::uint32_t>(
            ns.available_at > now_s ? ns.queued_tasks : 0);
        if (ns.available_at <= now_s) ns.queued_tasks = 0;
      }

      const auto placement = scheduler.assign(
          nodes, static_cast<std::uint32_t>(arriving.task_costs.size()), {});
      if (!placement.is_ok()) return;  // no eligible node: job dropped

      double job_finish = now_s;
      for (std::size_t i = 0; i < placement.value().size(); ++i) {
        const auto& p = placement.value()[i];
        const auto key = std::make_pair(p.site, p.node);
        NodeState& ns = state[key];
        const double capacity = node_of[key]->status.cpu_capacity;
        const double start = std::max(ns.available_at, now_s);
        const double duration = arriving.task_costs[i] / capacity;
        ns.available_at = start + duration;
        ns.busy_time += duration;
        ns.queued_tasks += 1;
        job_finish = std::max(job_finish, ns.available_at);
      }
      completions.push_back(job_finish - now_s +
                            0.0);  // waiting + processing time
      last_finish = std::max(last_finish, job_finish);
      ++result.jobs_completed;
    });
  }
  queue.run();

  if (!completions.empty()) {
    double total = 0;
    for (double c : completions) total += c;
    result.mean_completion_seconds =
        total / static_cast<double>(completions.size());
    std::sort(completions.begin(), completions.end());
    result.p95_completion_seconds =
        completions[static_cast<std::size_t>(
            std::min(completions.size() - 1,
                     static_cast<std::size_t>(
                         0.95 * static_cast<double>(completions.size()))))];
  }
  result.makespan_seconds = last_finish;

  if (last_finish > 0 && !nodes.empty()) {
    double busy = 0;
    for (const auto& [key, ns] : state) busy += ns.busy_time;
    result.mean_utilization =
        busy / (last_finish * static_cast<double>(nodes.size()));
  }
  return result;
}

}  // namespace pg::sched
