#include "sched/scheduler.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace pg::sched {

namespace {

/// Decision-time histogram and decision counter for one policy, resolved
/// once per policy name.
struct SchedInstruments {
  telemetry::Histogram& assign_micros;
  telemetry::Counter& assignments;

  static SchedInstruments make(const std::string& policy) {
    auto& registry = telemetry::MetricRegistry::global();
    return SchedInstruments{
        registry.histogram("pg_sched_assign_micros",
                           "Scheduler decision time (microseconds)",
                           telemetry::duration_buckets_micros(),
                           {{"policy", policy}}),
        registry.counter("pg_sched_assignments_total",
                         "Scheduling decisions made", {{"policy", policy}}),
    };
  }
};

/// Nodes that satisfy the constraints, in deterministic (site, name) order.
std::vector<const monitor::GridNode*> eligible_nodes(
    const std::vector<monitor::GridNode>& nodes,
    const Constraints& constraints) {
  std::vector<const monitor::GridNode*> out;
  for (const auto& node : nodes) {
    if (node.status.ram_free_mb < constraints.min_ram_mb) continue;
    if (node.status.cpu_load > constraints.max_load) continue;
    out.push_back(&node);
  }
  std::sort(out.begin(), out.end(),
            [](const monitor::GridNode* a, const monitor::GridNode* b) {
              if (a->site != b->site) return a->site < b->site;
              return a->status.name < b->status.name;
            });
  return out;
}

class RoundRobinScheduler final : public Scheduler {
 public:
  Result<std::vector<proto::RankPlacement>> assign(
      const std::vector<monitor::GridNode>& nodes, std::uint32_t ranks,
      const Constraints& constraints) override {
    static SchedInstruments instruments = SchedInstruments::make("round-robin");
    telemetry::ScopedTimer timer(instruments.assign_micros);
    instruments.assignments.increment();
    const auto eligible = eligible_nodes(nodes, constraints);
    if (eligible.empty())
      return error(ErrorCode::kUnavailable, "no eligible node");

    std::vector<proto::RankPlacement> placements;
    placements.reserve(ranks);
    for (std::uint32_t rank = 0; rank < ranks; ++rank) {
      const monitor::GridNode* node = eligible[rank % eligible.size()];
      placements.push_back(
          proto::RankPlacement{rank, node->site, node->status.name});
    }
    return placements;
  }

  std::string name() const override { return "round-robin"; }
};

class LoadBalancedScheduler final : public Scheduler {
 public:
  Result<std::vector<proto::RankPlacement>> assign(
      const std::vector<monitor::GridNode>& nodes, std::uint32_t ranks,
      const Constraints& constraints) override {
    static SchedInstruments instruments =
        SchedInstruments::make("load-balanced");
    telemetry::ScopedTimer timer(instruments.assign_micros);
    instruments.assignments.increment();
    const auto eligible = eligible_nodes(nodes, constraints);
    if (eligible.empty())
      return error(ErrorCode::kUnavailable, "no eligible node");

    // Projected queue length per node: current work (reported load and
    // running processes) plus what this call has already assigned, all
    // normalized by capacity. Greedy min-finish-time (classic list
    // scheduling, 2-approximation for makespan).
    struct Slot {
      const monitor::GridNode* node;
      double queued;  // work units already queued on this node
    };
    std::vector<Slot> slots;
    slots.reserve(eligible.size());
    for (const auto* node : eligible) {
      const double existing = node->status.running_processes +
                              node->status.cpu_load;
      slots.push_back(Slot{node, existing});
    }

    std::vector<proto::RankPlacement> placements;
    placements.reserve(ranks);
    for (std::uint32_t rank = 0; rank < ranks; ++rank) {
      Slot* best = &slots.front();
      double best_finish = finish_time(*best);
      for (auto& slot : slots) {
        const double f = finish_time(slot);
        if (f < best_finish) {
          best = &slot;
          best_finish = f;
        }
      }
      placements.push_back(proto::RankPlacement{rank, best->node->site,
                                                best->node->status.name});
      best->queued += 1.0;
    }
    return placements;
  }

  std::string name() const override { return "load-balanced"; }

 private:
  static double finish_time(const auto& slot) {
    // One more unit of work, finishing after everything queued, scaled by
    // node speed.
    return (slot.queued + 1.0) / slot.node->status.cpu_capacity;
  }
};

}  // namespace

SchedulerPtr make_scheduler(Policy policy) {
  return policy == Policy::kRoundRobin ? make_round_robin_scheduler()
                                       : make_load_balanced_scheduler();
}

SchedulerPtr make_round_robin_scheduler() {
  return std::make_unique<RoundRobinScheduler>();
}

SchedulerPtr make_load_balanced_scheduler() {
  return std::make_unique<LoadBalancedScheduler>();
}

}  // namespace pg::sched
