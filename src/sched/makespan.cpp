#include "sched/makespan.hpp"

#include <algorithm>
#include <cassert>

namespace pg::sched {

MakespanResult evaluate_makespan_weighted(
    const std::vector<monitor::GridNode>& nodes,
    const std::vector<proto::RankPlacement>& placements,
    const std::vector<double>& task_costs) {
  assert(placements.size() == task_costs.size());

  // Work queued per (site, node).
  std::map<std::pair<std::string, std::string>, double> queued;
  for (std::size_t i = 0; i < placements.size(); ++i) {
    queued[{placements[i].site, placements[i].node}] += task_costs[i];
  }

  MakespanResult result;
  double total_time = 0.0;
  double max_time = 0.0;
  std::size_t busy_nodes = 0;

  for (const auto& node : nodes) {
    const auto it = queued.find({node.site, node.status.name});
    const double work = (it == queued.end() ? 0.0 : it->second);
    const double background = node.status.cpu_load;
    const double capacity =
        node.status.cpu_capacity > 0 ? node.status.cpu_capacity : 1e-9;
    const double finish = (work + background) / capacity;
    total_time += finish;
    max_time = std::max(max_time, finish);
    if (work > 0) ++busy_nodes;
  }

  result.makespan = max_time;
  if (!nodes.empty() && max_time > 0) {
    const double mean_time = total_time / static_cast<double>(nodes.size());
    result.load_imbalance = mean_time > 0 ? max_time / mean_time : 0.0;
    result.average_utilization = mean_time / max_time;
  }
  (void)busy_nodes;
  return result;
}

MakespanResult evaluate_makespan(
    const std::vector<monitor::GridNode>& nodes,
    const std::vector<proto::RankPlacement>& placements, double task_cost) {
  return evaluate_makespan_weighted(
      nodes, placements,
      std::vector<double>(placements.size(), task_cost));
}

}  // namespace pg::sched
