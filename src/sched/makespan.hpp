// Makespan evaluation of a placement — the quality metric for experiment E5
// (round-robin vs load-balanced distribution).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "monitor/aggregator.hpp"
#include "proto/messages.hpp"

namespace pg::sched {

struct MakespanResult {
  double makespan = 0.0;          // time until the last node finishes
  double average_utilization = 0; // mean busy fraction across nodes
  double load_imbalance = 0.0;    // max node time / mean node time
};

/// Evaluates a placement of equal-cost tasks (`task_cost` work units each)
/// on heterogeneous nodes. Node finish time = (queued work + background
/// load) / cpu_capacity. This mirrors the model the LoadBalancedScheduler
/// optimizes, and is how the paper's "best possible use ... of the
/// available resources" claim is quantified.
MakespanResult evaluate_makespan(
    const std::vector<monitor::GridNode>& nodes,
    const std::vector<proto::RankPlacement>& placements,
    double task_cost = 1.0);

/// Variant with per-task costs (placements[i] runs tasks_costs[i]).
MakespanResult evaluate_makespan_weighted(
    const std::vector<monitor::GridNode>& nodes,
    const std::vector<proto::RankPlacement>& placements,
    const std::vector<double>& task_costs);

}  // namespace pg::sched
