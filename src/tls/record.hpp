// GSSL record layer (internal to src/tls).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "net/channel.hpp"

namespace pg::tls::internal {

enum class RecordType : std::uint8_t {
  kHandshake = 1,
  kData = 2,
  kAlert = 3,
};

struct Record {
  RecordType type;
  Bytes payload;
};

/// Writes [type u8][len u32][payload]. Payload is already protected (or
/// plaintext during the handshake).
Status write_record(net::Channel& channel, RecordType type, BytesView payload);

/// Reads one record; enforces a size bound against hostile peers.
Result<Record> read_record(net::Channel& channel);

/// Directional record protection: ChaCha20 encryption + HMAC-SHA-256
/// (encrypt-then-MAC), nonce = iv XOR sequence number.
class RecordCipher {
 public:
  RecordCipher(Bytes key, Bytes mac_key, Bytes iv);

  /// Protects `plaintext`; increments the send sequence.
  Bytes seal(RecordType type, BytesView plaintext);

  /// Verifies and decrypts; increments the receive sequence on success.
  Result<Bytes> open(RecordType type, BytesView protected_payload);

 private:
  Bytes nonce_for(std::uint64_t seq) const;
  Bytes mac_input(std::uint64_t seq, RecordType type,
                  BytesView ciphertext) const;

  Bytes key_;
  Bytes mac_key_;
  Bytes iv_;
  std::uint64_t seq_ = 0;
};

}  // namespace pg::tls::internal
