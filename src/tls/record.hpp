// GSSL record layer (internal to src/tls).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "net/channel.hpp"

namespace pg::tls::internal {

enum class RecordType : std::uint8_t {
  kHandshake = 1,
  kData = 2,
  kAlert = 3,
};

/// Wire record: [type u8][len u32 BE][payload]. `len` bounds a protected
/// payload, i.e. ciphertext plus trailing MAC.
constexpr std::size_t kMaxRecordSize = 16 * 1024 * 1024;
constexpr std::size_t kRecordHeaderSize = 5;
constexpr std::size_t kMacSize = crypto::kSha256DigestSize;

struct Record {
  RecordType type;
  Bytes payload;
};

/// Writes [type u8][len u32][payload]. Payload is already protected (or
/// plaintext during the handshake).
Status write_record(net::Channel& channel, RecordType type, BytesView payload);

/// Reads one record; enforces a size bound against hostile peers.
Result<Record> read_record(net::Channel& channel);

/// Reads one record into `record`, reusing its payload capacity. The hot
/// receive path calls this with a per-session Record so steady-state reads
/// do not allocate.
Status read_record_into(net::Channel& channel, Record& record);

/// Directional record protection: ChaCha20 encryption + HMAC-SHA-256
/// (encrypt-then-MAC), nonce = iv XOR sequence number.
class RecordCipher {
 public:
  RecordCipher(Bytes key, Bytes mac_key, Bytes iv);

  /// Protects `plaintext`; increments the send sequence.
  Bytes seal(RecordType type, BytesView plaintext);

  /// Verifies and decrypts; increments the receive sequence on success.
  Result<Bytes> open(RecordType type, BytesView protected_payload);

  /// Builds the complete wire record — header, ciphertext, MAC — into
  /// `out`, reusing its capacity; increments the send sequence. One
  /// channel.write(out) then puts the record on the wire. `plaintext`
  /// must not alias `out`. Steady state performs no allocation once
  /// `out` has grown to the working record size.
  Status seal_record(RecordType type, BytesView plaintext, Bytes& out);

  /// Verifies `record` ([ciphertext][mac]) and decrypts the ciphertext in
  /// place; on success returns the plaintext length (a prefix of
  /// `record`) and increments the receive sequence.
  Result<std::size_t> open_in_place(RecordType type, Bytes& record);

 private:
  void nonce_for(std::uint64_t seq,
                 std::uint8_t out[crypto::kChaChaNonceSize]) const;
  /// Encrypts plaintext into `ct` and writes the tag over
  /// [seq BE][type][ct] to `mac_out`. Does not advance the sequence.
  void seal_core(RecordType type, BytesView plaintext, std::uint8_t* ct,
                 std::uint8_t* mac_out);
  /// Recomputes the tag over [seq BE][type][ciphertext] into `mac_out`.
  void mac_core(RecordType type, BytesView ciphertext, std::uint8_t* mac_out);

  Bytes key_;
  Bytes iv_;
  crypto::HmacSha256 mac_;  // keyed once, reset per record
  std::uint64_t seq_ = 0;
};

}  // namespace pg::tls::internal
