// GSSL — the grid's SSL-like secure channel (paper layer 2 + "SSL").
//
// The paper tunnels inter-site traffic through SSL and authenticates hosts
// with certificates issued by a grid CA. GSSL reproduces that protocol role
// from scratch on top of src/crypto:
//
//   * record layer: typed, length-prefixed records; once the handshake
//     completes, records are ChaCha20-encrypted and HMAC-SHA-256
//     authenticated (encrypt-then-MAC) with per-direction keys and
//     sequence-number nonces (replay/reorder detection).
//   * handshake: mutual certificate authentication (both proxies present
//     CA-signed certificates), RSA-encrypted premaster secret, HKDF key
//     schedule, Finished MACs over the transcript.
//   * abbreviated handshake: a sealed resumption ticket (tls/resumption.hpp)
//     replaces the RSA key exchange and proof-of-possession on reconnect —
//     one round trip, zero RSA private-key operations, fresh keys per
//     connection. See docs/PROTOCOL.md "Session resumption".
//
// Threat model matches the paper: the inter-site network is untrusted;
// intra-site traffic is plaintext by default (see tls/link.hpp).
#pragma once

#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "crypto/cert.hpp"
#include "crypto/rsa.hpp"
#include "net/channel.hpp"
#include "tls/resumption.hpp"

namespace pg::tls {

/// What a host presents during the handshake.
struct GsslIdentity {
  crypto::Certificate certificate;
  crypto::RsaPrivateKey private_key;
};

/// Everything needed to run a handshake, minus the channel.
///
/// The resumption pointers are non-owning and optional. With a keeper the
/// accepting side issues tickets after full handshakes and accepts them in
/// abbreviated ones; with a store the dialing side caches and presents
/// them. Both sides still exchange and verify certificates on resumption —
/// only the RSA private-key operations and one round trip are skipped.
struct GsslConfig {
  GsslIdentity identity;
  std::string ca_name;             // trusted issuer
  crypto::RsaPublicKey ca_key;     // trusted issuer key
  std::string expected_peer;       // required peer subject; "" accepts any
  ResumptionKeeper* resumption = nullptr;        // accept + issue tickets
  ResumptionStore* resumption_store = nullptr;   // cache + present tickets
};

/// Byte counters for the overhead experiments.
struct GsslStats {
  std::uint64_t records_sent = 0;
  std::uint64_t records_received = 0;
  std::uint64_t plaintext_bytes_sent = 0;
  std::uint64_t ciphertext_bytes_sent = 0;  // includes MAC overhead
  std::uint64_t handshake_bytes = 0;
  bool resumed = false;  // established via the abbreviated handshake
};

/// An established secure session. Single reader + single writer per
/// direction (same rule as Channel).
class GsslSession {
 public:
  virtual ~GsslSession() = default;

  /// Encrypts and sends one application message.
  virtual Status send(BytesView message) = 0;

  /// Receives and decrypts one application message. MAC or sequence
  /// violations yield kCryptoError and poison the session.
  virtual Result<Bytes> recv() = 0;

  /// Event-mode receive path: verifies and decrypts one record payload in
  /// place (`record` = the wire payload after the [type u8][len u32]
  /// header, i.e. [ciphertext][mac]). On success returns the plaintext
  /// length — a prefix of `record`. Advances the receive sequence, so it
  /// is mutually exclusive with recv(): pick one receive style per
  /// session.
  virtual Result<std::size_t> open_record(std::uint8_t type,
                                          Bytes& record) = 0;

  virtual void close() = 0;

  /// The authenticated peer certificate.
  virtual const crypto::Certificate& peer_certificate() const = 0;

  virtual GsslStats stats() const = 0;
};

using GsslSessionPtr = std::unique_ptr<GsslSession>;

/// Runs the client (initiating) side of the handshake over `channel`.
/// On success the session owns nothing about the channel's lifetime — the
/// caller keeps the Channel alive for as long as the session is used.
Result<GsslSessionPtr> gssl_client_handshake(net::Channel& channel,
                                             const GsslConfig& config,
                                             const Clock& clock, Rng& rng);

/// Runs the server (accepting) side of the handshake.
Result<GsslSessionPtr> gssl_server_handshake(net::Channel& channel,
                                             const GsslConfig& config,
                                             const Clock& clock, Rng& rng);

}  // namespace pg::tls
