#include "tls/link.hpp"

#include <mutex>

#include "net/framer.hpp"

namespace pg::tls {

namespace {

class PlainLink final : public MessageLink {
 public:
  explicit PlainLink(net::Channel& channel) : channel_(channel) {}

  Status send(BytesView message) override {
    std::lock_guard<std::mutex> lock(send_mutex_);
    PG_RETURN_IF_ERROR(net::write_frame(channel_, message));
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.messages_sent;
    stats_.payload_bytes_sent += message.size();
    stats_.wire_bytes_sent += message.size() + 4;
    return Status::ok();
  }

  Result<Bytes> recv() override {
    Result<Bytes> frame = net::read_frame(channel_);
    if (frame.is_ok()) {
      std::lock_guard<std::mutex> slock(stats_mutex_);
      ++stats_.messages_received;
    }
    return frame;
  }

  void close() override { channel_.close(); }
  bool is_encrypted() const override { return false; }

  LinkStats stats() const override {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    return stats_;
  }

 private:
  net::Channel& channel_;
  std::mutex send_mutex_;
  mutable std::mutex stats_mutex_;
  LinkStats stats_;
};

class SecureLink final : public MessageLink {
 public:
  explicit SecureLink(GsslSessionPtr session) : session_(std::move(session)) {}

  Status send(BytesView message) override {
    return session_->send(message);
  }

  Result<Bytes> recv() override { return session_->recv(); }

  void close() override { session_->close(); }
  bool is_encrypted() const override { return true; }

  LinkStats stats() const override {
    const GsslStats gs = session_->stats();
    LinkStats ls;
    ls.messages_sent = gs.records_sent;
    ls.messages_received = gs.records_received;
    ls.payload_bytes_sent = gs.plaintext_bytes_sent;
    ls.wire_bytes_sent = gs.ciphertext_bytes_sent;
    ls.crypto_bytes = gs.plaintext_bytes_sent;
    ls.handshake_bytes = gs.handshake_bytes;
    return ls;
  }

 private:
  GsslSessionPtr session_;
};

}  // namespace

MessageLinkPtr make_plain_link(net::Channel& channel) {
  return std::make_unique<PlainLink>(channel);
}

MessageLinkPtr make_secure_link(GsslSessionPtr session) {
  return std::make_unique<SecureLink>(std::move(session));
}

}  // namespace pg::tls
