#include "tls/link.hpp"

#include <atomic>
#include <mutex>

#include "net/framer.hpp"
#include "tls/record.hpp"

namespace pg::tls {

namespace {

std::uint32_t load_u32_be(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

class PlainLink final : public MessageLink, private net::FrameDecoder {
 public:
  explicit PlainLink(net::Channel& channel) : channel_(channel) {}

  Status send(BytesView message) override {
    std::lock_guard<std::mutex> lock(send_mutex_);
    PG_RETURN_IF_ERROR(net::write_frame(channel_, message));
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    payload_bytes_sent_.fetch_add(message.size(), std::memory_order_relaxed);
    wire_bytes_sent_.fetch_add(message.size() + 4, std::memory_order_relaxed);
    return Status::ok();
  }

  Result<Bytes> recv() override {
    Result<Bytes> frame = net::read_frame(channel_);
    if (frame.is_ok())
      messages_received_.fetch_add(1, std::memory_order_relaxed);
    return frame;
  }

  void close() override { channel_.close(); }
  bool is_encrypted() const override { return false; }

  net::FrameDecoder* decoder() override { return this; }

  LinkStats stats() const override {
    LinkStats stats;
    stats.messages_sent = messages_sent_.load(std::memory_order_relaxed);
    stats.messages_received =
        messages_received_.load(std::memory_order_relaxed);
    stats.payload_bytes_sent =
        payload_bytes_sent_.load(std::memory_order_relaxed);
    stats.wire_bytes_sent = wire_bytes_sent_.load(std::memory_order_relaxed);
    return stats;
  }

 private:
  // Incremental [len u32 BE][payload] extraction — the event-mode mirror
  // of net::read_frame.
  Status decode(Bytes& buf, std::size_t& pos,
                const std::function<void(BytesView)>& sink) override {
    for (;;) {
      const std::size_t available = buf.size() - pos;
      if (available < 4) return Status::ok();
      const std::uint32_t len = load_u32_be(buf.data() + pos);
      if (len > net::kMaxFrameSize)
        return error(ErrorCode::kProtocolError, "frame too large");
      if (available - 4 < len) return Status::ok();
      sink(BytesView(buf.data() + pos + 4, len));
      pos += 4 + len;
      messages_received_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  net::Channel& channel_;
  std::mutex send_mutex_;
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_received_{0};
  std::atomic<std::uint64_t> payload_bytes_sent_{0};
  std::atomic<std::uint64_t> wire_bytes_sent_{0};
};

class SecureLink final : public MessageLink, private net::FrameDecoder {
 public:
  explicit SecureLink(GsslSessionPtr session) : session_(std::move(session)) {}

  Status send(BytesView message) override {
    return session_->send(message);
  }

  Result<Bytes> recv() override { return session_->recv(); }

  void close() override { session_->close(); }
  bool is_encrypted() const override { return true; }

  net::FrameDecoder* decoder() override { return this; }

  LinkStats stats() const override {
    const GsslStats gs = session_->stats();
    LinkStats ls;
    ls.messages_sent = gs.records_sent;
    ls.messages_received = gs.records_received;
    ls.payload_bytes_sent = gs.plaintext_bytes_sent;
    ls.wire_bytes_sent = gs.ciphertext_bytes_sent;
    ls.crypto_bytes = gs.plaintext_bytes_sent;
    ls.handshake_bytes = gs.handshake_bytes;
    return ls;
  }

 private:
  // Incremental [type u8][len u32 BE][protected payload] extraction; each
  // complete record is copied into the per-link scratch and decrypted in
  // place there via the session's caller-owned open path (the stream
  // buffer itself must keep the raw tail for the next readiness event).
  Status decode(Bytes& buf, std::size_t& pos,
                const std::function<void(BytesView)>& sink) override {
    for (;;) {
      const std::size_t available = buf.size() - pos;
      if (available < internal::kRecordHeaderSize) return Status::ok();
      const std::uint8_t type = buf[pos];
      const std::uint32_t len = load_u32_be(buf.data() + pos + 1);
      if (len > internal::kMaxRecordSize)
        return error(ErrorCode::kProtocolError, "record too large");
      if (available - internal::kRecordHeaderSize < len) return Status::ok();
      const std::uint8_t* body = buf.data() + pos + internal::kRecordHeaderSize;
      scratch_.assign(body, body + len);
      pos += internal::kRecordHeaderSize + len;
      Result<std::size_t> plain_len = session_->open_record(type, scratch_);
      if (!plain_len.is_ok()) return plain_len.status();
      sink(BytesView(scratch_.data(), plain_len.value()));
    }
  }

  GsslSessionPtr session_;
  Bytes scratch_;  // reactor I/O thread only (single reader)
};

}  // namespace

MessageLinkPtr make_plain_link(net::Channel& channel) {
  return std::make_unique<PlainLink>(channel);
}

MessageLinkPtr make_secure_link(GsslSessionPtr session) {
  return std::make_unique<SecureLink>(std::move(session));
}

}  // namespace pg::tls
