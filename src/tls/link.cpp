#include "tls/link.hpp"

#include <atomic>
#include <mutex>

#include "net/framer.hpp"

namespace pg::tls {

namespace {

class PlainLink final : public MessageLink {
 public:
  explicit PlainLink(net::Channel& channel) : channel_(channel) {}

  Status send(BytesView message) override {
    std::lock_guard<std::mutex> lock(send_mutex_);
    PG_RETURN_IF_ERROR(net::write_frame(channel_, message));
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    payload_bytes_sent_.fetch_add(message.size(), std::memory_order_relaxed);
    wire_bytes_sent_.fetch_add(message.size() + 4, std::memory_order_relaxed);
    return Status::ok();
  }

  Result<Bytes> recv() override {
    Result<Bytes> frame = net::read_frame(channel_);
    if (frame.is_ok())
      messages_received_.fetch_add(1, std::memory_order_relaxed);
    return frame;
  }

  void close() override { channel_.close(); }
  bool is_encrypted() const override { return false; }

  LinkStats stats() const override {
    LinkStats stats;
    stats.messages_sent = messages_sent_.load(std::memory_order_relaxed);
    stats.messages_received =
        messages_received_.load(std::memory_order_relaxed);
    stats.payload_bytes_sent =
        payload_bytes_sent_.load(std::memory_order_relaxed);
    stats.wire_bytes_sent = wire_bytes_sent_.load(std::memory_order_relaxed);
    return stats;
  }

 private:
  net::Channel& channel_;
  std::mutex send_mutex_;
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_received_{0};
  std::atomic<std::uint64_t> payload_bytes_sent_{0};
  std::atomic<std::uint64_t> wire_bytes_sent_{0};
};

class SecureLink final : public MessageLink {
 public:
  explicit SecureLink(GsslSessionPtr session) : session_(std::move(session)) {}

  Status send(BytesView message) override {
    return session_->send(message);
  }

  Result<Bytes> recv() override { return session_->recv(); }

  void close() override { session_->close(); }
  bool is_encrypted() const override { return true; }

  LinkStats stats() const override {
    const GsslStats gs = session_->stats();
    LinkStats ls;
    ls.messages_sent = gs.records_sent;
    ls.messages_received = gs.records_received;
    ls.payload_bytes_sent = gs.plaintext_bytes_sent;
    ls.wire_bytes_sent = gs.ciphertext_bytes_sent;
    ls.crypto_bytes = gs.plaintext_bytes_sent;
    ls.handshake_bytes = gs.handshake_bytes;
    return ls;
  }

 private:
  GsslSessionPtr session_;
};

}  // namespace

MessageLinkPtr make_plain_link(net::Channel& channel) {
  return std::make_unique<PlainLink>(channel);
}

MessageLinkPtr make_secure_link(GsslSessionPtr session) {
  return std::make_unique<SecureLink>(std::move(session));
}

}  // namespace pg::tls
