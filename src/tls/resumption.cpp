#include "tls/resumption.hpp"

#include "common/serde.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "telemetry/metrics.hpp"

namespace pg::tls {

namespace {

constexpr std::size_t kMacSize = 32;
constexpr std::size_t kSecretSize = 32;

struct CacheInstruments {
  telemetry::Counter& hits;
  telemetry::Counter& misses;

  static CacheInstruments& get() {
    auto& registry = telemetry::MetricRegistry::global();
    static CacheInstruments instruments{
        registry.counter("pg_resumption_cache_total",
                         "Resumption-ticket cache lookups by result",
                         {{"result", "hit"}}),
        registry.counter("pg_resumption_cache_total",
                         "Resumption-ticket cache lookups by result",
                         {{"result", "miss"}}),
    };
    return instruments;
  }
};

}  // namespace

ResumptionKeeper::ResumptionKeeper(Bytes realm_key, TimeMicros lifetime)
    : lifetime_(lifetime) {
  derive_subkeys(realm_key);
}

void ResumptionKeeper::derive_subkeys(BytesView realm_key) {
  // Domain-separate the encryption and MAC keys from the realm key so the
  // same realm key can also drive TicketService without interaction.
  enc_key_ = crypto::hkdf(Bytes{}, realm_key,
                          to_bytes("gssl resumption ticket enc"), 32);
  mac_key_ = crypto::hkdf(Bytes{}, realm_key,
                          to_bytes("gssl resumption ticket mac"), 32);
}

void ResumptionKeeper::rotate_key(Bytes new_realm_key) {
  std::lock_guard<std::mutex> lock(mutex_);
  derive_subkeys(new_realm_key);
}

Bytes ResumptionKeeper::seal(const std::string& peer_subject,
                             BytesView secret, TimeMicros now,
                             Rng& rng) const {
  BufferWriter w;
  w.put_string(peer_subject);
  w.put_bytes(secret);
  w.put_u64(static_cast<std::uint64_t>(now));
  w.put_u64(static_cast<std::uint64_t>(now + lifetime_));
  const Bytes body = w.take();

  Bytes enc_key, mac_key;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    enc_key = enc_key_;
    mac_key = mac_key_;
  }

  // nonce || ChaCha20(body) || HMAC(nonce || ciphertext)
  Bytes out = rng.next_bytes(crypto::kChaChaNonceSize);
  const Bytes nonce = out;
  append(out, crypto::chacha20_xor(enc_key, nonce, 1, body));
  append(out, crypto::hmac_sha256(mac_key, out));
  return out;
}

Result<ResumptionTicket> ResumptionKeeper::open(BytesView sealed,
                                                TimeMicros now) const {
  if (sealed.size() < crypto::kChaChaNonceSize + kMacSize + 1)
    return error(ErrorCode::kUnauthenticated, "resumption ticket truncated");

  Bytes enc_key, mac_key;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    enc_key = enc_key_;
    mac_key = mac_key_;
  }

  const BytesView authed = sealed.subspan(0, sealed.size() - kMacSize);
  const BytesView mac = sealed.subspan(sealed.size() - kMacSize);
  const Bytes expected = crypto::hmac_sha256(mac_key, authed);
  if (!constant_time_equal(mac, expected))
    return error(ErrorCode::kUnauthenticated, "resumption ticket MAC invalid");

  const BytesView nonce = sealed.subspan(0, crypto::kChaChaNonceSize);
  const Bytes body = crypto::chacha20_xor(
      enc_key, nonce, 1, authed.subspan(crypto::kChaChaNonceSize));

  ResumptionTicket t;
  BufferReader r(body);
  std::uint64_t issued = 0, expires = 0;
  PG_RETURN_IF_ERROR(r.get_string(t.peer_subject));
  PG_RETURN_IF_ERROR(r.get_bytes(t.secret));
  PG_RETURN_IF_ERROR(r.get_u64(issued));
  PG_RETURN_IF_ERROR(r.get_u64(expires));
  PG_RETURN_IF_ERROR(r.expect_end());
  t.issued_at = static_cast<TimeMicros>(issued);
  t.expires_at = static_cast<TimeMicros>(expires);

  if (t.secret.size() != kSecretSize)
    return error(ErrorCode::kUnauthenticated, "resumption secret malformed");
  if (now < t.issued_at)
    return error(ErrorCode::kUnauthenticated,
                 "resumption ticket not yet valid");
  if (now > t.expires_at)
    return error(ErrorCode::kUnauthenticated, "resumption ticket expired");
  return t;
}

void ResumptionStore::put(const std::string& peer_subject, Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[peer_subject] = std::move(entry);
}

std::optional<ResumptionStore::Entry> ResumptionStore::lookup(
    const std::string& peer_subject) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(peer_subject);
  if (it == entries_.end()) {
    ++misses_;
    CacheInstruments::get().misses.increment();
    return std::nullopt;
  }
  ++hits_;
  CacheInstruments::get().hits.increment();
  return it->second;
}

void ResumptionStore::erase(const std::string& peer_subject) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(peer_subject);
}

std::uint64_t ResumptionStore::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResumptionStore::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace pg::tls
