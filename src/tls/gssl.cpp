// GSSL handshake and session implementation.
#include "tls/gssl.hpp"

#include <atomic>
#include <mutex>

#include "common/serde.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "telemetry/metrics.hpp"
#include "tls/record.hpp"

namespace pg::tls {

namespace {

/// Registry instruments for GSSL, resolved once per process.
struct TlsInstruments {
  telemetry::Histogram& client_handshake_micros;
  telemetry::Histogram& server_handshake_micros;
  telemetry::Histogram& seal_micros;
  telemetry::Histogram& open_micros;
  telemetry::Counter& records_sealed;
  telemetry::Counter& records_opened;
  telemetry::Counter& handshakes_full;
  telemetry::Counter& handshakes_resumed;
  telemetry::Counter& handshakes_resume_rejected;

  static TlsInstruments& get() {
    auto& registry = telemetry::MetricRegistry::global();
    static TlsInstruments instruments{
        registry.histogram("pg_tls_handshake_micros",
                           "GSSL handshake duration (microseconds)",
                           telemetry::duration_buckets_micros(),
                           {{"role", "client"}}),
        registry.histogram("pg_tls_handshake_micros",
                           "GSSL handshake duration (microseconds)",
                           telemetry::duration_buckets_micros(),
                           {{"role", "server"}}),
        registry.histogram("pg_tls_record_micros",
                           "GSSL record encrypt+MAC / MAC+decrypt time "
                           "(microseconds)",
                           telemetry::duration_buckets_micros(),
                           {{"op", "seal"}}),
        registry.histogram("pg_tls_record_micros",
                           "GSSL record encrypt+MAC / MAC+decrypt time "
                           "(microseconds)",
                           telemetry::duration_buckets_micros(),
                           {{"op", "open"}}),
        registry.counter("pg_tls_records_total",
                         "GSSL data records protected/unprotected",
                         {{"op", "seal"}}),
        registry.counter("pg_tls_records_total",
                         "GSSL data records protected/unprotected",
                         {{"op", "open"}}),
        registry.counter("pg_handshake_total",
                         "GSSL handshakes completed by kind",
                         {{"kind", "full"}}),
        registry.counter("pg_handshake_total",
                         "GSSL handshakes completed by kind",
                         {{"kind", "resumed"}}),
        registry.counter("pg_handshake_total",
                         "GSSL handshakes completed by kind",
                         {{"kind", "resume_rejected"}}),
    };
    return instruments;
  }
};

using internal::Record;
using internal::RecordCipher;
using internal::RecordType;

using internal::kRecordHeaderSize;

constexpr std::size_t kNonceSize = 32;
constexpr std::size_t kPremasterSize = 48;

enum class HsType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kKeyExchange = 3,
  kCertVerify = 4,
  kFinished = 5,
  kServerHelloResume = 6,  // server accepted the offered ticket
  kNewTicket = 7,          // fresh ticket after a full handshake
};

// Hello flags: the dialing side advertises it can cache tickets, the
// accepting side that a kNewTicket message follows its Finished.
constexpr std::uint8_t kFlagResumption = 0x01;

// ---------------------------------------------------------------------
// Handshake message encoding.

Bytes encode_hello(HsType type, BytesView nonce,
                   const crypto::Certificate& cert, std::uint8_t flags,
                   BytesView ticket) {
  BufferWriter w;
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_bytes(nonce);
  w.put_bytes(cert.serialize());
  w.put_u8(flags);
  w.put_bytes(ticket);
  return w.take();
}

struct Hello {
  HsType type = HsType::kClientHello;
  Bytes nonce;
  crypto::Certificate certificate;
  std::uint8_t flags = 0;
  Bytes ticket;  // offered (ClientHello) or refreshed (ServerHelloResume)
};

Result<Hello> decode_hello(BytesView payload) {
  BufferReader r(payload);
  std::uint8_t type = 0;
  PG_RETURN_IF_ERROR(r.get_u8(type));
  if (type != static_cast<std::uint8_t>(HsType::kClientHello) &&
      type != static_cast<std::uint8_t>(HsType::kServerHello) &&
      type != static_cast<std::uint8_t>(HsType::kServerHelloResume))
    return error(ErrorCode::kProtocolError, "unexpected handshake message");
  Hello hello;
  hello.type = static_cast<HsType>(type);
  Bytes cert_bytes;
  PG_RETURN_IF_ERROR(r.get_bytes(hello.nonce));
  PG_RETURN_IF_ERROR(r.get_bytes(cert_bytes));
  PG_RETURN_IF_ERROR(r.get_u8(hello.flags));
  PG_RETURN_IF_ERROR(r.get_bytes(hello.ticket));
  PG_RETURN_IF_ERROR(r.expect_end());
  if (hello.nonce.size() != kNonceSize)
    return error(ErrorCode::kProtocolError, "bad hello nonce size");
  Result<crypto::Certificate> cert =
      crypto::Certificate::deserialize(cert_bytes);
  if (!cert.is_ok()) return cert.status();
  hello.certificate = cert.take();
  return hello;
}

Bytes encode_blob(HsType type, BytesView blob) {
  BufferWriter w;
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_bytes(blob);
  return w.take();
}

Result<Bytes> decode_blob(HsType expected, BytesView payload) {
  BufferReader r(payload);
  std::uint8_t type = 0;
  PG_RETURN_IF_ERROR(r.get_u8(type));
  if (type != static_cast<std::uint8_t>(expected))
    return error(ErrorCode::kProtocolError, "unexpected handshake message");
  Bytes blob;
  PG_RETURN_IF_ERROR(r.get_bytes(blob));
  PG_RETURN_IF_ERROR(r.expect_end());
  return blob;
}

// ---------------------------------------------------------------------
// Key schedule.

struct SessionKeys {
  Bytes client_key, server_key;
  Bytes client_mac, server_mac;
  Bytes client_iv, server_iv;
};

Bytes derive_master(BytesView premaster, BytesView client_nonce,
                    BytesView server_nonce) {
  Bytes salt;
  append(salt, client_nonce);
  append(salt, server_nonce);
  return crypto::hkdf(salt, premaster, to_bytes("gssl master secret"), 32);
}

SessionKeys derive_keys(BytesView master) {
  const Bytes block =
      crypto::hkdf_expand(master, to_bytes("gssl key expansion"), 152);
  SessionKeys keys;
  auto slice = [&block](std::size_t off, std::size_t len) {
    return Bytes(block.begin() + static_cast<std::ptrdiff_t>(off),
                 block.begin() + static_cast<std::ptrdiff_t>(off + len));
  };
  keys.client_key = slice(0, 32);
  keys.server_key = slice(32, 32);
  keys.client_mac = slice(64, 32);
  keys.server_mac = slice(96, 32);
  keys.client_iv = slice(128, 12);
  keys.server_iv = slice(140, 12);
  return keys;
}

// Resumption key schedule: the ticket secret plays the premaster's role.
// Both sides derive the secret from the previous session's master, and a
// fresh master from it plus both new nonces — so every resumed connection
// gets keys and IVs unrelated to any earlier connection's.
Bytes derive_resumption_master(BytesView secret, BytesView client_nonce,
                               BytesView server_nonce) {
  Bytes salt;
  append(salt, client_nonce);
  append(salt, server_nonce);
  return crypto::hkdf(salt, secret, to_bytes("gssl resumption master"), 32);
}

Bytes derive_resumption_secret(BytesView master) {
  return crypto::hkdf_expand(master, to_bytes("gssl resumption secret"), 32);
}

Bytes finished_mac(BytesView master, std::string_view label,
                   BytesView transcript) {
  Bytes input = to_bytes(label);
  append(input, crypto::sha256(transcript));
  return crypto::hmac_sha256(master, input);
}

// ---------------------------------------------------------------------
// Handshake plumbing shared by both sides.

class HandshakeIo {
 public:
  explicit HandshakeIo(net::Channel& channel) : channel_(channel) {}

  Status send(BytesView payload) {
    bytes_ += payload.size() + kRecordHeaderSize;
    append(transcript_, payload);
    return internal::write_record(channel_, RecordType::kHandshake, payload);
  }

  Result<Bytes> recv() {
    Result<Record> record = internal::read_record(channel_);
    if (!record.is_ok()) return record.status();
    if (record.value().type == RecordType::kAlert)
      return error(ErrorCode::kCryptoError,
                   "peer alert: " + to_string(record.value().payload));
    if (record.value().type != RecordType::kHandshake)
      return error(ErrorCode::kProtocolError,
                   "expected handshake record");
    bytes_ += record.value().payload.size() + kRecordHeaderSize;
    append(transcript_, record.value().payload);
    return std::move(record.value().payload);
  }

  /// Transcript of every handshake payload exchanged so far, in order.
  const Bytes& transcript() const { return transcript_; }
  std::uint64_t bytes() const { return bytes_; }

  void send_alert(const std::string& reason) {
    (void)internal::write_record(channel_, RecordType::kAlert,
                                 to_bytes(reason));
  }

 private:
  net::Channel& channel_;
  Bytes transcript_;
  std::uint64_t bytes_ = 0;
};

Status verify_peer_cert(const crypto::Certificate& cert,
                        const GsslConfig& config, const Clock& clock) {
  PG_RETURN_IF_ERROR(crypto::CertificateAuthority::verify_with_key(
      cert, config.ca_name, config.ca_key, clock.now()));
  if (!config.expected_peer.empty() && cert.subject != config.expected_peer)
    return error(ErrorCode::kCryptoError,
                 "peer subject mismatch: got " + cert.subject + ", want " +
                     config.expected_peer);
  return Status::ok();
}

// ---------------------------------------------------------------------
// Session.

class GsslSessionImpl final : public GsslSession {
 public:
  GsslSessionImpl(net::Channel& channel, RecordCipher send_cipher,
                  RecordCipher recv_cipher, crypto::Certificate peer,
                  std::uint64_t handshake_bytes, bool resumed = false)
      : channel_(channel),
        send_cipher_(std::move(send_cipher)),
        recv_cipher_(std::move(recv_cipher)),
        peer_(std::move(peer)),
        handshake_bytes_(handshake_bytes),
        resumed_(resumed) {}

  Status send(BytesView message) override {
    std::lock_guard<std::mutex> lock(send_mutex_);
    // One reusable buffer, one write: seal_record lays out
    // [header][ciphertext][mac] in send_buf_, reusing its capacity.
    {
      telemetry::ScopedTimer timer(TlsInstruments::get().seal_micros);
      PG_RETURN_IF_ERROR(
          send_cipher_.seal_record(RecordType::kData, message, send_buf_));
    }
    PG_RETURN_IF_ERROR(channel_.write(send_buf_));
    TlsInstruments::get().records_sealed.increment();
    records_sent_.fetch_add(1, std::memory_order_relaxed);
    plaintext_bytes_sent_.fetch_add(message.size(),
                                    std::memory_order_relaxed);
    ciphertext_bytes_sent_.fetch_add(send_buf_.size(),
                                     std::memory_order_relaxed);
    return Status::ok();
  }

  Result<Bytes> recv() override {
    std::lock_guard<std::mutex> lock(recv_mutex_);
    PG_RETURN_IF_ERROR(internal::read_record_into(channel_, recv_record_));
    if (recv_record_.type == RecordType::kAlert)
      return error(ErrorCode::kCryptoError,
                   "peer alert: " + to_string(recv_record_.payload));
    if (recv_record_.type != RecordType::kData)
      return error(ErrorCode::kProtocolError,
                   "unexpected record type after handshake");
    Result<std::size_t> plain_len = [&] {
      telemetry::ScopedTimer timer(TlsInstruments::get().open_micros);
      return recv_cipher_.open_in_place(RecordType::kData, recv_record_.payload);
    }();
    if (!plain_len.is_ok()) return plain_len.status();
    TlsInstruments::get().records_opened.increment();
    records_received_.fetch_add(1, std::memory_order_relaxed);
    // The only allocation on the receive path: the caller-visible result.
    return Bytes(recv_record_.payload.begin(),
                 recv_record_.payload.begin() +
                     static_cast<std::ptrdiff_t>(plain_len.value()));
  }

  Result<std::size_t> open_record(std::uint8_t type, Bytes& record) override {
    std::lock_guard<std::mutex> lock(recv_mutex_);
    if (type == static_cast<std::uint8_t>(RecordType::kAlert))
      return error(ErrorCode::kCryptoError,
                   "peer alert: " + to_string(record));
    if (type != static_cast<std::uint8_t>(RecordType::kData))
      return error(ErrorCode::kProtocolError,
                   "unexpected record type after handshake");
    Result<std::size_t> plain_len = [&] {
      telemetry::ScopedTimer timer(TlsInstruments::get().open_micros);
      return recv_cipher_.open_in_place(RecordType::kData, record);
    }();
    if (!plain_len.is_ok()) return plain_len;
    TlsInstruments::get().records_opened.increment();
    records_received_.fetch_add(1, std::memory_order_relaxed);
    return plain_len;
  }

  void close() override { channel_.close(); }

  const crypto::Certificate& peer_certificate() const override {
    return peer_;
  }

  GsslStats stats() const override {
    GsslStats stats;
    stats.records_sent = records_sent_.load(std::memory_order_relaxed);
    stats.records_received = records_received_.load(std::memory_order_relaxed);
    stats.plaintext_bytes_sent =
        plaintext_bytes_sent_.load(std::memory_order_relaxed);
    stats.ciphertext_bytes_sent =
        ciphertext_bytes_sent_.load(std::memory_order_relaxed);
    stats.handshake_bytes = handshake_bytes_;
    stats.resumed = resumed_;
    return stats;
  }

 private:
  net::Channel& channel_;
  std::mutex send_mutex_;
  std::mutex recv_mutex_;
  RecordCipher send_cipher_;
  RecordCipher recv_cipher_;
  crypto::Certificate peer_;
  Bytes send_buf_;               // guarded by send_mutex_
  internal::Record recv_record_;  // guarded by recv_mutex_
  const std::uint64_t handshake_bytes_;
  const bool resumed_;
  std::atomic<std::uint64_t> records_sent_{0};
  std::atomic<std::uint64_t> records_received_{0};
  std::atomic<std::uint64_t> plaintext_bytes_sent_{0};
  std::atomic<std::uint64_t> ciphertext_bytes_sent_{0};
};

}  // namespace

Result<GsslSessionPtr> gssl_client_handshake(net::Channel& channel,
                                             const GsslConfig& config,
                                             const Clock& clock, Rng& rng) {
  telemetry::ScopedTimer timer(TlsInstruments::get().client_handshake_micros);
  HandshakeIo io(channel);

  // A cached ticket for the expected peer rides along in the ClientHello.
  // (With no expected peer there is no lookup key, so dial full.)
  ResumptionStore* store = config.resumption_store;
  std::optional<ResumptionStore::Entry> cached;
  if (store != nullptr && !config.expected_peer.empty())
    cached = store->lookup(config.expected_peer);

  // -> ClientHello
  const Bytes client_nonce = rng.next_bytes(kNonceSize);
  const std::uint8_t client_flags =
      store != nullptr ? kFlagResumption : std::uint8_t{0};
  PG_RETURN_IF_ERROR(io.send(encode_hello(
      HsType::kClientHello, client_nonce, config.identity.certificate,
      client_flags, cached ? BytesView(cached->ticket) : BytesView())));

  // <- ServerHello | ServerHelloResume
  Result<Bytes> sh_payload = io.recv();
  if (!sh_payload.is_ok()) return sh_payload.status();
  Result<Hello> server_hello = decode_hello(sh_payload.value());
  if (!server_hello.is_ok()) return server_hello.status();
  {
    const Status cert_ok =
        verify_peer_cert(server_hello.value().certificate, config, clock);
    if (!cert_ok.is_ok()) {
      io.send_alert(cert_ok.to_string());
      return cert_ok;
    }
  }

  if (server_hello.value().type == HsType::kServerHelloResume) {
    if (!cached) {
      io.send_alert("unsolicited resumption");
      return error(ErrorCode::kProtocolError,
                   "server resumed without an offered ticket");
    }
    const Bytes master = derive_resumption_master(
        cached->secret, client_nonce, server_hello.value().nonce);

    // <- Finished (server authenticates first on the abbreviated path)
    const Bytes pre_server_fin_transcript = io.transcript();
    Result<Bytes> fin_payload = io.recv();
    if (!fin_payload.is_ok()) return fin_payload.status();
    Result<Bytes> server_fin =
        decode_blob(HsType::kFinished, fin_payload.value());
    if (!server_fin.is_ok()) return server_fin.status();
    const Bytes expected_fin =
        finished_mac(master, "server finished", pre_server_fin_transcript);
    if (!constant_time_equal(server_fin.value(), expected_fin))
      return error(ErrorCode::kCryptoError, "server Finished MAC mismatch");

    // -> Finished
    const Bytes client_fin =
        finished_mac(master, "client finished", io.transcript());
    PG_RETURN_IF_ERROR(io.send(encode_blob(HsType::kFinished, client_fin)));

    // The ServerHelloResume carries a refreshed ticket for the next dial.
    if (!server_hello.value().ticket.empty()) {
      store->put(server_hello.value().certificate.subject,
                 {server_hello.value().ticket,
                  derive_resumption_secret(master)});
    }

    TlsInstruments::get().handshakes_resumed.increment();
    const SessionKeys keys = derive_keys(master);
    return GsslSessionPtr(new GsslSessionImpl(
        channel,
        RecordCipher(keys.client_key, keys.client_mac, keys.client_iv),
        RecordCipher(keys.server_key, keys.server_mac, keys.server_iv),
        server_hello.value().certificate, io.bytes(), /*resumed=*/true));
  }

  // -> KeyExchange (premaster under the server's public key)
  const Bytes premaster = rng.next_bytes(kPremasterSize);
  Result<Bytes> encrypted = crypto::rsa_encrypt(
      server_hello.value().certificate.public_key, premaster, rng);
  if (!encrypted.is_ok()) return encrypted.status();
  PG_RETURN_IF_ERROR(
      io.send(encode_blob(HsType::kKeyExchange, encrypted.value())));

  // -> CertVerify (proof of possession of the client key)
  const Bytes cv_signature = crypto::rsa_sign(
      config.identity.private_key, crypto::sha256(io.transcript()));
  PG_RETURN_IF_ERROR(io.send(encode_blob(HsType::kCertVerify, cv_signature)));

  const Bytes master =
      derive_master(premaster, client_nonce, server_hello.value().nonce);

  // -> Finished
  const Bytes client_fin =
      finished_mac(master, "client finished", io.transcript());
  PG_RETURN_IF_ERROR(io.send(encode_blob(HsType::kFinished, client_fin)));

  // <- Finished
  const Bytes pre_server_fin_transcript = io.transcript();
  Result<Bytes> fin_payload = io.recv();
  if (!fin_payload.is_ok()) return fin_payload.status();
  Result<Bytes> server_fin = decode_blob(HsType::kFinished, fin_payload.value());
  if (!server_fin.is_ok()) return server_fin.status();
  const Bytes expected_fin =
      finished_mac(master, "server finished", pre_server_fin_transcript);
  if (!constant_time_equal(server_fin.value(), expected_fin))
    return error(ErrorCode::kCryptoError, "server Finished MAC mismatch");

  // <- NewTicket (only when the server announced one in its hello)
  if ((server_hello.value().flags & kFlagResumption) != 0) {
    Result<Bytes> nt_payload = io.recv();
    if (!nt_payload.is_ok()) return nt_payload.status();
    Result<Bytes> ticket = decode_blob(HsType::kNewTicket, nt_payload.value());
    if (!ticket.is_ok()) return ticket.status();
    if (store != nullptr && !ticket.value().empty()) {
      store->put(server_hello.value().certificate.subject,
                 {ticket.take(), derive_resumption_secret(master)});
    }
  }

  TlsInstruments::get().handshakes_full.increment();
  const SessionKeys keys = derive_keys(master);
  return GsslSessionPtr(new GsslSessionImpl(
      channel,
      RecordCipher(keys.client_key, keys.client_mac, keys.client_iv),
      RecordCipher(keys.server_key, keys.server_mac, keys.server_iv),
      server_hello.value().certificate, io.bytes()));
}

Result<GsslSessionPtr> gssl_server_handshake(net::Channel& channel,
                                             const GsslConfig& config,
                                             const Clock& clock, Rng& rng) {
  telemetry::ScopedTimer timer(TlsInstruments::get().server_handshake_micros);
  HandshakeIo io(channel);

  // <- ClientHello
  Result<Bytes> ch_payload = io.recv();
  if (!ch_payload.is_ok()) return ch_payload.status();
  Result<Hello> client_hello = decode_hello(ch_payload.value());
  if (!client_hello.is_ok()) return client_hello.status();
  if (client_hello.value().type != HsType::kClientHello)
    return error(ErrorCode::kProtocolError, "unexpected handshake message");
  {
    const Status cert_ok =
        verify_peer_cert(client_hello.value().certificate, config, clock);
    if (!cert_ok.is_ok()) {
      io.send_alert(cert_ok.to_string());
      return cert_ok;
    }
  }
  const std::string& client_subject = client_hello.value().certificate.subject;
  const bool client_caches =
      (client_hello.value().flags & kFlagResumption) != 0;

  // An offered ticket that opens cleanly and matches the authenticated
  // client subject takes the abbreviated path. Any open failure (tamper,
  // expiry, rotated realm key) silently continues with the full
  // handshake — the client only ever sees a normal ServerHello.
  bool ticket_rejected = false;
  ResumptionKeeper* keeper = config.resumption;
  if (keeper != nullptr && !client_hello.value().ticket.empty()) {
    Result<ResumptionTicket> ticket =
        keeper->open(client_hello.value().ticket, clock.now());
    if (ticket.is_ok() && ticket.value().peer_subject == client_subject) {
      const Bytes server_nonce = rng.next_bytes(kNonceSize);
      const Bytes master = derive_resumption_master(
          ticket.value().secret, client_hello.value().nonce, server_nonce);

      // -> ServerHelloResume, carrying a refreshed ticket for next time.
      const Bytes next_ticket = keeper->seal(
          client_subject, derive_resumption_secret(master), clock.now(), rng);
      PG_RETURN_IF_ERROR(io.send(
          encode_hello(HsType::kServerHelloResume, server_nonce,
                       config.identity.certificate, 0, next_ticket)));

      // -> Finished
      const Bytes server_fin =
          finished_mac(master, "server finished", io.transcript());
      PG_RETURN_IF_ERROR(io.send(encode_blob(HsType::kFinished, server_fin)));

      // <- Finished (proves the client actually holds the ticket secret)
      const Bytes pre_client_fin_transcript = io.transcript();
      Result<Bytes> fin_payload = io.recv();
      if (!fin_payload.is_ok()) return fin_payload.status();
      Result<Bytes> client_fin =
          decode_blob(HsType::kFinished, fin_payload.value());
      if (!client_fin.is_ok()) return client_fin.status();
      const Bytes expected_fin =
          finished_mac(master, "client finished", pre_client_fin_transcript);
      if (!constant_time_equal(client_fin.value(), expected_fin)) {
        io.send_alert("finished mismatch");
        return error(ErrorCode::kCryptoError,
                     "client Finished MAC mismatch");
      }

      TlsInstruments::get().handshakes_resumed.increment();
      const SessionKeys keys = derive_keys(master);
      return GsslSessionPtr(new GsslSessionImpl(
          channel,
          RecordCipher(keys.server_key, keys.server_mac, keys.server_iv),
          RecordCipher(keys.client_key, keys.client_mac, keys.client_iv),
          client_hello.value().certificate, io.bytes(), /*resumed=*/true));
    }
    ticket_rejected = true;
  }

  // -> ServerHello (flag set when a NewTicket follows our Finished)
  const bool will_issue = keeper != nullptr && client_caches;
  const Bytes server_nonce = rng.next_bytes(kNonceSize);
  PG_RETURN_IF_ERROR(io.send(encode_hello(
      HsType::kServerHello, server_nonce, config.identity.certificate,
      will_issue ? kFlagResumption : std::uint8_t{0}, BytesView())));

  // <- KeyExchange
  Result<Bytes> kx_payload = io.recv();
  if (!kx_payload.is_ok()) return kx_payload.status();
  Result<Bytes> encrypted =
      decode_blob(HsType::kKeyExchange, kx_payload.value());
  if (!encrypted.is_ok()) return encrypted.status();
  const Bytes pre_cv_transcript = io.transcript();
  Result<Bytes> premaster =
      crypto::rsa_decrypt(config.identity.private_key, encrypted.value());
  if (!premaster.is_ok()) {
    io.send_alert("key exchange failed");
    return premaster.status();
  }
  if (premaster.value().size() != kPremasterSize) {
    io.send_alert("bad premaster size");
    return error(ErrorCode::kCryptoError, "bad premaster size");
  }

  // <- CertVerify
  Result<Bytes> cv_payload = io.recv();
  if (!cv_payload.is_ok()) return cv_payload.status();
  Result<Bytes> cv_signature =
      decode_blob(HsType::kCertVerify, cv_payload.value());
  if (!cv_signature.is_ok()) return cv_signature.status();
  if (!crypto::rsa_verify(client_hello.value().certificate.public_key,
                          crypto::sha256(pre_cv_transcript),
                          cv_signature.value())) {
    io.send_alert("certificate verify failed");
    return error(ErrorCode::kCryptoError,
                 "client CertVerify signature invalid");
  }

  const Bytes master = derive_master(premaster.value(),
                                     client_hello.value().nonce, server_nonce);

  // <- Finished
  const Bytes pre_client_fin_transcript = io.transcript();
  Result<Bytes> fin_payload = io.recv();
  if (!fin_payload.is_ok()) return fin_payload.status();
  Result<Bytes> client_fin =
      decode_blob(HsType::kFinished, fin_payload.value());
  if (!client_fin.is_ok()) return client_fin.status();
  const Bytes expected_fin =
      finished_mac(master, "client finished", pre_client_fin_transcript);
  if (!constant_time_equal(client_fin.value(), expected_fin)) {
    io.send_alert("finished mismatch");
    return error(ErrorCode::kCryptoError, "client Finished MAC mismatch");
  }

  // -> Finished
  const Bytes server_fin =
      finished_mac(master, "server finished", io.transcript());
  PG_RETURN_IF_ERROR(io.send(encode_blob(HsType::kFinished, server_fin)));

  // -> NewTicket: seed the client's cache so its next dial resumes.
  if (will_issue) {
    const Bytes ticket = keeper->seal(
        client_subject, derive_resumption_secret(master), clock.now(), rng);
    PG_RETURN_IF_ERROR(io.send(encode_blob(HsType::kNewTicket, ticket)));
  }

  auto& instruments = TlsInstruments::get();
  (ticket_rejected ? instruments.handshakes_resume_rejected
                   : instruments.handshakes_full)
      .increment();
  const SessionKeys keys = derive_keys(master);
  return GsslSessionPtr(new GsslSessionImpl(
      channel,
      RecordCipher(keys.server_key, keys.server_mac, keys.server_iv),
      RecordCipher(keys.client_key, keys.client_mac, keys.client_iv),
      client_hello.value().certificate, io.bytes()));
}

}  // namespace pg::tls
