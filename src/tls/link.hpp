// MessageLink — a message-oriented connection that is either plaintext or
// GSSL-protected.
//
// The paper's edge-tunneling rule (§3): "By default, the local communication
// at each site is not encrypted ... If a node in the site requires a safe
// channel, it can be made available by the proxy through an explicit call."
// The proxy and MPI layers therefore talk to a MessageLink and never care
// which kind they got; deployment policy decides.
#pragma once

#include <memory>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "net/channel.hpp"
#include "net/frame_decoder.hpp"
#include "tls/gssl.hpp"

namespace pg::tls {

struct LinkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t payload_bytes_sent = 0;
  std::uint64_t wire_bytes_sent = 0;   // payload + framing (+ crypto overhead)
  std::uint64_t crypto_bytes = 0;      // bytes that passed through the cipher
  std::uint64_t handshake_bytes = 0;   // 0 for plaintext links
};

/// One end of a message pipe. Thread-compatible: one sender thread and one
/// receiver thread may operate concurrently.
class MessageLink {
 public:
  virtual ~MessageLink() = default;

  virtual Status send(BytesView message) = 0;
  virtual Result<Bytes> recv() = 0;
  virtual void close() = 0;
  virtual bool is_encrypted() const = 0;
  virtual LinkStats stats() const = 0;

  /// Incremental decoder for the reactor core: feeds complete plaintext
  /// messages out of raw channel bytes (decrypting GSSL records along the
  /// way). Owned by the link; valid for the link's lifetime. Using the
  /// decoder and calling recv() on the same link is undefined — in event
  /// mode the reactor is the only reader.
  virtual net::FrameDecoder* decoder() = 0;
};

using MessageLinkPtr = std::unique_ptr<MessageLink>;

/// Plaintext link: length-prefixed frames straight over the channel.
/// The link does not own the channel.
MessageLinkPtr make_plain_link(net::Channel& channel);

/// Secure link wrapping an established GSSL session (which must outlive
/// this link's channel use; the link takes ownership of the session).
MessageLinkPtr make_secure_link(GsslSessionPtr session);

}  // namespace pg::tls
