// GSSL session resumption — the paper's §3 "single authentication per
// session" ticket idea applied to the transport handshake itself.
//
// After a full handshake the server seals a resumption ticket under a
// realm-wide ticket key (TicketService-style: any proxy of the realm can
// open any proxy's tickets). The ticket binds the peer subject, a
// 32-byte resumption secret derivable by both ends from the session
// master, and a validity window. A reconnecting client presents the
// ticket in its ClientHello; both sides then derive fresh per-direction
// keys via HKDF over the ticket secret plus new nonces — one round trip
// and zero RSA private-key operations. Expiry, key rotation or tampering
// simply fall back to the full handshake, never a connection error.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace pg::tls {

/// Decoded contents of a resumption ticket (only ever travels sealed).
struct ResumptionTicket {
  std::string peer_subject;  // client identity the ticket is bound to
  Bytes secret;              // 32-byte resumption secret
  TimeMicros issued_at = 0;
  TimeMicros expires_at = 0;
};

/// Server/realm side: seals and opens resumption tickets. Tickets are
/// encrypt-then-MAC under keys derived from the realm ticket key, so the
/// secret inside can safely travel in plaintext handshake records.
/// Thread-safe; shared by every accepting connection of a proxy.
class ResumptionKeeper {
 public:
  ResumptionKeeper(Bytes realm_key, TimeMicros lifetime);

  /// Seals (peer_subject, secret, now..now+lifetime) into an opaque
  /// ticket the client stores and later presents.
  Bytes seal(const std::string& peer_subject, BytesView secret,
             TimeMicros now, Rng& rng) const;

  /// Opens and validates a sealed ticket. Tamper, expiry and rotated-key
  /// failures are ordinary errors — callers fall back to the full
  /// handshake.
  Result<ResumptionTicket> open(BytesView sealed, TimeMicros now) const;

  /// Immediately invalidates every outstanding ticket (realm key
  /// rotation).
  void rotate_key(Bytes new_realm_key);

  TimeMicros lifetime() const { return lifetime_; }

 private:
  void derive_subkeys(BytesView realm_key);

  mutable std::mutex mutex_;
  Bytes enc_key_;  // guarded by mutex_
  Bytes mac_key_;  // guarded by mutex_
  const TimeMicros lifetime_;
};

/// Client side: per-peer cache of the most recent ticket and its secret.
/// Thread-safe; shared by every dialing connection of a proxy or node
/// agent. Lookups feed the pg_resumption_cache_total{result} counters.
class ResumptionStore {
 public:
  struct Entry {
    Bytes ticket;  // sealed, opaque to us
    Bytes secret;  // 32-byte resumption secret matching the ticket
  };

  void put(const std::string& peer_subject, Entry entry);
  std::optional<Entry> lookup(const std::string& peer_subject);
  void erase(const std::string& peer_subject);

  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pg::tls
