#include "tls/record.hpp"

#include <cstring>

namespace pg::tls::internal {

Status write_record(net::Channel& channel, RecordType type,
                    BytesView payload) {
  if (payload.size() > kMaxRecordSize)
    return error(ErrorCode::kInvalidArgument, "record too large");

  std::uint8_t header[kRecordHeaderSize];
  header[0] = static_cast<std::uint8_t>(type);
  header[1] = static_cast<std::uint8_t>(payload.size() >> 24);
  header[2] = static_cast<std::uint8_t>(payload.size() >> 16);
  header[3] = static_cast<std::uint8_t>(payload.size() >> 8);
  header[4] = static_cast<std::uint8_t>(payload.size());

  // Small records (handshake messages, alerts) go out in one write;
  // larger payloads are written after the header rather than copied.
  std::uint8_t coalesced[kRecordHeaderSize + 1024];
  if (payload.size() <= sizeof(coalesced) - kRecordHeaderSize) {
    std::memcpy(coalesced, header, kRecordHeaderSize);
    if (!payload.empty())
      std::memcpy(coalesced + kRecordHeaderSize, payload.data(),
                  payload.size());
    return channel.write(
        BytesView(coalesced, kRecordHeaderSize + payload.size()));
  }
  PG_RETURN_IF_ERROR(channel.write(BytesView(header, kRecordHeaderSize)));
  return channel.write(payload);
}

Status read_record_into(net::Channel& channel, Record& record) {
  std::uint8_t header[kRecordHeaderSize];
  Result<std::size_t> first = channel.read(header, kRecordHeaderSize);
  if (!first.is_ok()) return first.status();
  if (first.value() == 0) return error(ErrorCode::kUnavailable, "eof");
  if (first.value() < kRecordHeaderSize) {
    PG_RETURN_IF_ERROR(channel.read_exact(header + first.value(),
                                          kRecordHeaderSize - first.value()));
  }

  const auto raw_type = header[0];
  if (raw_type < 1 || raw_type > 3)
    return error(ErrorCode::kProtocolError, "unknown record type");
  const std::uint32_t len = (static_cast<std::uint32_t>(header[1]) << 24) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 8) |
                            static_cast<std::uint32_t>(header[4]);
  if (len > kMaxRecordSize)
    return error(ErrorCode::kProtocolError, "oversized record");

  record.type = static_cast<RecordType>(raw_type);
  record.payload.resize(len);
  if (len > 0)
    PG_RETURN_IF_ERROR(channel.read_exact(record.payload.data(), len));
  return Status::ok();
}

Result<Record> read_record(net::Channel& channel) {
  Record record;
  PG_RETURN_IF_ERROR(read_record_into(channel, record));
  return record;
}

RecordCipher::RecordCipher(Bytes key, Bytes mac_key, Bytes iv)
    : key_(std::move(key)), iv_(std::move(iv)), mac_(mac_key) {}

void RecordCipher::nonce_for(
    std::uint64_t seq, std::uint8_t out[crypto::kChaChaNonceSize]) const {
  // 12-byte nonce = iv XOR (zero-padded big-endian seq), TLS 1.3 style.
  std::memcpy(out, iv_.data(), crypto::kChaChaNonceSize);
  for (int i = 0; i < 8; ++i) {
    out[crypto::kChaChaNonceSize - 1 - static_cast<std::size_t>(i)] ^=
        static_cast<std::uint8_t>(seq >> (8 * i));
  }
}

void RecordCipher::mac_core(RecordType type, BytesView ciphertext,
                            std::uint8_t* mac_out) {
  // MAC input stream: [8-byte BE seq][1-byte type][ciphertext].
  std::uint8_t head[9];
  for (int i = 0; i < 8; ++i)
    head[i] = static_cast<std::uint8_t>(seq_ >> (56 - 8 * i));
  head[8] = static_cast<std::uint8_t>(type);
  mac_.reset();
  mac_.update(BytesView(head, sizeof(head)));
  mac_.update(ciphertext);
  mac_.finish_into(mac_out);
}

void RecordCipher::seal_core(RecordType type, BytesView plaintext,
                             std::uint8_t* ct, std::uint8_t* mac_out) {
  std::uint8_t nonce[crypto::kChaChaNonceSize];
  nonce_for(seq_, nonce);
  crypto::ChaCha20 cipher(key_, BytesView(nonce, sizeof(nonce)), 1);
  cipher.process(plaintext.data(), ct, plaintext.size());
  mac_core(type, BytesView(ct, plaintext.size()), mac_out);
}

Bytes RecordCipher::seal(RecordType type, BytesView plaintext) {
  Bytes out(plaintext.size() + kMacSize);
  seal_core(type, plaintext, out.data(), out.data() + plaintext.size());
  ++seq_;
  return out;
}

Status RecordCipher::seal_record(RecordType type, BytesView plaintext,
                                 Bytes& out) {
  const std::size_t body = plaintext.size() + kMacSize;
  if (body > kMaxRecordSize)
    return error(ErrorCode::kInvalidArgument, "record too large");
  out.resize(kRecordHeaderSize + body);
  out[0] = static_cast<std::uint8_t>(type);
  out[1] = static_cast<std::uint8_t>(body >> 24);
  out[2] = static_cast<std::uint8_t>(body >> 16);
  out[3] = static_cast<std::uint8_t>(body >> 8);
  out[4] = static_cast<std::uint8_t>(body);
  seal_core(type, plaintext, out.data() + kRecordHeaderSize,
            out.data() + kRecordHeaderSize + plaintext.size());
  ++seq_;
  return Status::ok();
}

Result<Bytes> RecordCipher::open(RecordType type,
                                 BytesView protected_payload) {
  if (protected_payload.size() < kMacSize)
    return error(ErrorCode::kCryptoError, "record shorter than MAC");
  const BytesView ciphertext =
      protected_payload.subspan(0, protected_payload.size() - kMacSize);
  const BytesView mac = protected_payload.subspan(ciphertext.size());

  std::uint8_t expected[kMacSize];
  mac_core(type, ciphertext, expected);
  if (!constant_time_equal(mac, BytesView(expected, kMacSize)))
    return error(ErrorCode::kCryptoError, "record MAC mismatch");

  std::uint8_t nonce[crypto::kChaChaNonceSize];
  nonce_for(seq_, nonce);
  ++seq_;
  Bytes out(ciphertext.size());
  crypto::ChaCha20 cipher(key_, BytesView(nonce, sizeof(nonce)), 1);
  cipher.process(ciphertext.data(), out.data(), out.size());
  return out;
}

Result<std::size_t> RecordCipher::open_in_place(RecordType type,
                                                Bytes& record) {
  if (record.size() < kMacSize)
    return error(ErrorCode::kCryptoError, "record shorter than MAC");
  const std::size_t clen = record.size() - kMacSize;

  std::uint8_t expected[kMacSize];
  mac_core(type, BytesView(record.data(), clen), expected);
  if (!constant_time_equal(BytesView(record.data() + clen, kMacSize),
                           BytesView(expected, kMacSize)))
    return error(ErrorCode::kCryptoError, "record MAC mismatch");

  std::uint8_t nonce[crypto::kChaChaNonceSize];
  nonce_for(seq_, nonce);
  ++seq_;
  crypto::ChaCha20 cipher(key_, BytesView(nonce, sizeof(nonce)), 1);
  cipher.process(record.data(), record.data(), clen);
  return clen;
}

}  // namespace pg::tls::internal
