#include "tls/record.hpp"

#include "common/serde.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace pg::tls::internal {

namespace {
constexpr std::size_t kMaxRecordSize = 16 * 1024 * 1024;
constexpr std::size_t kMacSize = crypto::kSha256DigestSize;
}  // namespace

Status write_record(net::Channel& channel, RecordType type,
                    BytesView payload) {
  if (payload.size() > kMaxRecordSize)
    return error(ErrorCode::kInvalidArgument, "record too large");
  BufferWriter w;
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_u32(static_cast<std::uint32_t>(payload.size()));
  w.put_raw(payload);
  return channel.write(w.data());
}

Result<Record> read_record(net::Channel& channel) {
  std::uint8_t header[5];
  Result<std::size_t> first = channel.read(header, 5);
  if (!first.is_ok()) return first.status();
  if (first.value() == 0) return error(ErrorCode::kUnavailable, "eof");
  if (first.value() < 5) {
    PG_RETURN_IF_ERROR(
        channel.read_exact(header + first.value(), 5 - first.value()));
  }

  const auto raw_type = header[0];
  if (raw_type < 1 || raw_type > 3)
    return error(ErrorCode::kProtocolError, "unknown record type");
  const std::uint32_t len = (static_cast<std::uint32_t>(header[1]) << 24) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 8) |
                            static_cast<std::uint32_t>(header[4]);
  if (len > kMaxRecordSize)
    return error(ErrorCode::kProtocolError, "oversized record");

  Record record;
  record.type = static_cast<RecordType>(raw_type);
  record.payload.resize(len);
  if (len > 0)
    PG_RETURN_IF_ERROR(channel.read_exact(record.payload.data(), len));
  return record;
}

RecordCipher::RecordCipher(Bytes key, Bytes mac_key, Bytes iv)
    : key_(std::move(key)), mac_key_(std::move(mac_key)), iv_(std::move(iv)) {}

Bytes RecordCipher::nonce_for(std::uint64_t seq) const {
  // 12-byte nonce = iv XOR (zero-padded big-endian seq), TLS 1.3 style.
  Bytes nonce = iv_;
  for (int i = 0; i < 8; ++i) {
    nonce[nonce.size() - 1 - static_cast<std::size_t>(i)] ^=
        static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return nonce;
}

Bytes RecordCipher::mac_input(std::uint64_t seq, RecordType type,
                              BytesView ciphertext) const {
  BufferWriter w;
  w.put_u64(seq);
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_raw(ciphertext);
  return w.take();
}

Bytes RecordCipher::seal(RecordType type, BytesView plaintext) {
  const Bytes nonce = nonce_for(seq_);
  Bytes out = crypto::chacha20_xor(key_, nonce, 1, plaintext);
  const Bytes mac = crypto::hmac_sha256(mac_key_, mac_input(seq_, type, out));
  append(out, mac);
  ++seq_;
  return out;
}

Result<Bytes> RecordCipher::open(RecordType type,
                                 BytesView protected_payload) {
  if (protected_payload.size() < kMacSize)
    return error(ErrorCode::kCryptoError, "record shorter than MAC");
  const BytesView ciphertext =
      protected_payload.subspan(0, protected_payload.size() - kMacSize);
  const BytesView mac = protected_payload.subspan(ciphertext.size());

  const Bytes expected =
      crypto::hmac_sha256(mac_key_, mac_input(seq_, type, ciphertext));
  if (!constant_time_equal(mac, expected))
    return error(ErrorCode::kCryptoError, "record MAC mismatch");

  const Bytes nonce = nonce_for(seq_);
  ++seq_;
  return crypto::chacha20_xor(key_, nonce, 1, ciphertext);
}

}  // namespace pg::tls::internal
