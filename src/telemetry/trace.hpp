// Distributed trace spans for the proxy grid.
//
// One grid operation (login -> schedule -> MPI open -> data -> done) crosses
// several proxies; a trace ties the pieces back together. The model is the
// usual parent/child span tree:
//
//   * TraceContext {trace_id, span_id} names a position in the tree. It is
//     carried on every control Envelope (proto/envelope.hpp) and installed
//     on the receiving connection's reader thread, so spans opened by a
//     remote handler parent to the sender's span automatically.
//   * Span is RAII: started through Tracer, finished (recorded into the
//     process-local ring buffer) on end()/destruction. While alive it is
//     the thread's *current* context, so nested spans self-parent.
//   * Tracer::global() owns the ring buffer; the web interface renders
//     /trace/<id> from it and tests assert over it.
//
// Cross-thread propagation is explicit: capture Tracer::current() (or
// span.context()) before handing work to another thread and install it
// there with ScopedTraceContext.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace pg::telemetry {

struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// A finished span as stored in the ring buffer.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::string name;
  std::string component;  // e.g. the proxy's site
  std::int64_t start_micros = 0;
  std::int64_t end_micros = 0;
  bool ok = true;
  std::string note;
};

class Tracer;

/// RAII span handle. Movable; records exactly once.
class Span {
 public:
  Span() = default;  // inactive
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  TraceContext context() const {
    return TraceContext{record_.trace_id, record_.span_id};
  }
  bool active() const { return tracer_ != nullptr; }

  void set_ok(bool ok) { record_.ok = ok; }
  void set_note(std::string note) { record_.note = std::move(note); }

  /// Finishes the span: restores the thread's previous current context and
  /// commits the record. Idempotent.
  void end();

 private:
  friend class Tracer;
  Span(Tracer* tracer, SpanRecord record, TraceContext previous)
      : tracer_(tracer), record_(std::move(record)), previous_(previous) {}

  Tracer* tracer_ = nullptr;
  SpanRecord record_;
  TraceContext previous_;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  static Tracer& global();

  /// The calling thread's current context (the innermost live span, or
  /// whatever ScopedTraceContext installed).
  static TraceContext current();

  /// Starts a span. Parent defaults to the thread's current context; a new
  /// trace id is allocated when there is no parent. The span becomes the
  /// thread's current context until end().
  Span start_span(const std::string& name, const std::string& component = "");
  Span start_span_with_parent(const std::string& name, TraceContext parent,
                              const std::string& component = "");

  /// Ingests a span completed on another proxy (kTraceExport). Dedupes by
  /// (trace_id, span_id): in-process grids share this tracer, so a span
  /// that already lives in the ring is dropped instead of double-recorded.
  void import_span(const SpanRecord& record);

  /// True when `trace_id` was allocated by this tracer (the trace's origin
  /// is in this process). Remote proxies export spans of traces they did
  /// NOT originate back toward the origin. Tracking is bounded; the oldest
  /// origins are forgotten first.
  bool originated_here(std::uint64_t trace_id) const;

  /// All recorded spans of one trace, in completion order.
  std::vector<SpanRecord> trace(std::uint64_t trace_id) const;

  /// Distinct trace ids still present in the buffer, most recent first.
  std::vector<std::uint64_t> recent_traces(std::size_t limit = 32) const;

  std::vector<SpanRecord> snapshot() const;

  /// Drops every recorded span (tests).
  void clear();

 private:
  friend class Span;
  void commit(const SpanRecord& record);
  std::uint64_t next_id();

  void remember(std::uint64_t key, std::unordered_set<std::uint64_t>& set,
                std::deque<std::uint64_t>& order);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t head_ = 0;   // next write slot once the ring is full
  std::uint64_t seq_ = 1;  // id source; salted into trace ids
  // Bounded FIFO sets (guarded by mutex_): trace ids this tracer
  // allocated, and (trace_id, span_id) keys already imported.
  std::unordered_set<std::uint64_t> originated_;
  std::deque<std::uint64_t> originated_order_;
  std::unordered_set<std::uint64_t> imported_;
  std::deque<std::uint64_t> imported_order_;
};

/// Installs a per-thread span sink for the scope: every span *committed by
/// this thread* (Span::end) is also handed to `sink`, after it is recorded.
/// The proxy wraps remote-envelope handler dispatch in one of these to
/// collect the spans the handler finished, for export to the trace origin.
/// Imported spans never re-enter a sink. Nests; inner sink wins.
class ScopedSpanSink {
 public:
  using Sink = std::function<void(const SpanRecord&)>;

  explicit ScopedSpanSink(Sink sink);
  ~ScopedSpanSink();

  ScopedSpanSink(const ScopedSpanSink&) = delete;
  ScopedSpanSink& operator=(const ScopedSpanSink&) = delete;

 private:
  friend class Span;
  Sink sink_;
  ScopedSpanSink* previous_;
};

/// Installs `ctx` as the thread's current trace context for the scope —
/// the receive-side half of context propagation.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext previous_;
};

}  // namespace pg::telemetry
