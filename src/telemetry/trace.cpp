#include "telemetry/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace pg::telemetry {

namespace {

thread_local TraceContext g_current;
thread_local ScopedSpanSink* g_span_sink = nullptr;

constexpr std::size_t kMaxTracked = 8192;  // originated / imported sets

std::int64_t now_micros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// splitmix64 — spreads the sequential id source across the id space so
/// trace ids from different proxies in one process don't look adjacent.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

// ------------------------------------------------------------------ span

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      record_(std::move(other.record_)),
      previous_(other.previous_) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    previous_ = other.previous_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  // Restore only if we are still the innermost span on this thread (a span
  // moved to another thread must not clobber that thread's context).
  if (g_current.trace_id == record_.trace_id &&
      g_current.span_id == record_.span_id) {
    g_current = previous_;
  }
  record_.end_micros = now_micros();
  tracer->commit(record_);
  if (g_span_sink != nullptr && g_span_sink->sink_) {
    g_span_sink->sink_(record_);
  }
}

// ---------------------------------------------------------------- tracer

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

TraceContext Tracer::current() { return g_current; }

std::uint64_t Tracer::next_id() {
  static std::atomic<std::uint64_t> counter{1};
  // Mixed so ids are non-zero and well spread; the raw counter guarantees
  // uniqueness within the process.
  std::uint64_t id = 0;
  while (id == 0) id = mix(counter.fetch_add(1, std::memory_order_relaxed));
  return id;
}

Span Tracer::start_span(const std::string& name,
                        const std::string& component) {
  return start_span_with_parent(name, g_current, component);
}

Span Tracer::start_span_with_parent(const std::string& name,
                                    TraceContext parent,
                                    const std::string& component) {
  SpanRecord record;
  if (parent.valid()) {
    record.trace_id = parent.trace_id;
  } else {
    record.trace_id = next_id();
    std::lock_guard<std::mutex> lock(mutex_);
    remember(record.trace_id, originated_, originated_order_);
  }
  record.span_id = next_id();
  record.parent_span_id = parent.valid() ? parent.span_id : 0;
  record.name = name;
  record.component = component;
  record.start_micros = now_micros();

  const TraceContext previous = g_current;
  g_current = TraceContext{record.trace_id, record.span_id};
  return Span(this, std::move(record), previous);
}

void Tracer::commit(const SpanRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[head_] = record;
    head_ = (head_ + 1) % capacity_;
  }
  ++seq_;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // Oldest first: [head_, end) then [0, head_).
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<SpanRecord> Tracer::trace(std::uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  for (SpanRecord& record : snapshot()) {
    if (record.trace_id == trace_id) out.push_back(std::move(record));
  }
  return out;
}

std::vector<std::uint64_t> Tracer::recent_traces(std::size_t limit) const {
  const std::vector<SpanRecord> all = snapshot();
  std::vector<std::uint64_t> out;
  for (auto it = all.rbegin(); it != all.rend() && out.size() < limit; ++it) {
    if (std::find(out.begin(), out.end(), it->trace_id) == out.end()) {
      out.push_back(it->trace_id);
    }
  }
  return out;
}

void Tracer::remember(std::uint64_t key,
                      std::unordered_set<std::uint64_t>& set,
                      std::deque<std::uint64_t>& order) {
  if (!set.insert(key).second) return;
  order.push_back(key);
  while (order.size() > kMaxTracked) {
    set.erase(order.front());
    order.pop_front();
  }
}

bool Tracer::originated_here(std::uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return originated_.count(trace_id) != 0;
}

void Tracer::import_span(const SpanRecord& record) {
  // Mix both ids so (a, b) and (b, a) do not collide on the same key.
  const std::uint64_t key = record.trace_id ^ mix(record.span_id);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (imported_.count(key) != 0) return;
    remember(key, imported_, imported_order_);
    // In-process grids share one tracer: the exporting "remote" proxy
    // already committed this span into our ring. Skip the re-insert.
    for (const SpanRecord& existing : ring_) {
      if (existing.trace_id == record.trace_id &&
          existing.span_id == record.span_id) {
        return;
      }
    }
  }
  commit(record);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
}

// ------------------------------------------------------------- span sink

ScopedSpanSink::ScopedSpanSink(Sink sink)
    : sink_(std::move(sink)), previous_(g_span_sink) {
  g_span_sink = this;
}

ScopedSpanSink::~ScopedSpanSink() { g_span_sink = previous_; }

// ------------------------------------------------------- scoped context

ScopedTraceContext::ScopedTraceContext(TraceContext ctx)
    : previous_(g_current) {
  g_current = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { g_current = previous_; }

}  // namespace pg::telemetry
