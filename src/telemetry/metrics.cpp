#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pg::telemetry {

namespace internal {

std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShardCount;
  return slot;
}

}  // namespace internal

// ------------------------------------------------------------- histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::vector<std::atomic<std::uint64_t>>(
      internal::kShardCount * (bounds_.size() + 1));
}

void Histogram::observe(double value) {
  const std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                                value) -
                               bounds_.begin());
  const std::size_t shard = internal::thread_shard();
  counts_[shard * (bounds_.size() + 1) + bucket].fetch_add(
      1, std::memory_order_relaxed);
  std::atomic<double>& sum = shards_[shard].sum;
  double expected = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(expected, expected + value,
                                    std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (std::size_t shard = 0; shard < internal::kShardCount; ++shard) {
    for (std::size_t bucket = 0; bucket <= bounds_.size(); ++bucket) {
      snap.counts[bucket] +=
          counts_[shard * (bounds_.size() + 1) + bucket].load(
              std::memory_order_relaxed);
    }
    snap.sum += shards_[shard].sum.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t c : snap.counts) snap.count += c;
  return snap;
}

std::vector<double> duration_buckets_micros() {
  // 1us .. 10s, roughly x4 per step.
  return {1,     4,      16,      64,      256,      1024,
          4096,  16384,  65536,   262144,  1048576,  10000000};
}

std::vector<double> size_buckets_bytes() {
  return {64,    256,    1024,    4096,    16384,   65536,
          262144, 1048576, 4194304, 16777216};
}

// -------------------------------------------------------------- registry

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

namespace {

/// Canonical `{k="v",...}` encoding; "" for the empty label set. Doubles as
/// the instrument key so equal label sets collapse to one instrument.
std::string encode_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    for (const char c : value) {
      if (c == '\\' || c == '"') out += '\\';
      out += c;
    }
    out += "\"";
  }
  out += "}";
  return out;
}

/// Labels with one extra pair appended (for histogram `le` buckets).
std::string encode_labels_with(const Labels& labels, const std::string& key,
                               const std::string& value) {
  Labels extended = labels;
  extended[key] = value;
  return encode_labels(extended);
}

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream out;
  out << v;
  return out.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '\\' || c == '"') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

MetricRegistry::Family& MetricRegistry::family(const std::string& name,
                                               Kind kind,
                                               const std::string& help) {
  Family& fam = families_[name];
  if (fam.instruments.empty()) {
    fam.kind = kind;
    fam.help = help;
  }
  return fam;
}

Counter& MetricRegistry::counter(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, Kind::kCounter, help);
  Instrument& inst = fam.instruments[encode_labels(labels)];
  if (!inst.counter) {
    inst.labels = labels;
    inst.counter = std::make_unique<Counter>();
  }
  return *inst.counter;
}

Gauge& MetricRegistry::gauge(const std::string& name, const std::string& help,
                             const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, Kind::kGauge, help);
  Instrument& inst = fam.instruments[encode_labels(labels)];
  if (!inst.gauge) {
    inst.labels = labels;
    inst.gauge = std::make_unique<Gauge>();
  }
  return *inst.gauge;
}

Histogram& MetricRegistry::histogram(const std::string& name,
                                     const std::string& help,
                                     std::vector<double> bounds,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, Kind::kHistogram, help);
  Instrument& inst = fam.instruments[encode_labels(labels)];
  if (!inst.histogram) {
    inst.labels = labels;
    inst.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *inst.histogram;
}

std::string MetricRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) out << "# HELP " << name << " " << fam.help << "\n";
    out << "# TYPE " << name << " "
        << (fam.kind == Kind::kCounter
                ? "counter"
                : fam.kind == Kind::kGauge ? "gauge" : "histogram")
        << "\n";
    for (const auto& [key, inst] : fam.instruments) {
      if (fam.kind == Kind::kCounter) {
        out << name << key << " " << inst.counter->value() << "\n";
      } else if (fam.kind == Kind::kGauge) {
        out << name << key << " " << inst.gauge->value() << "\n";
      } else {
        const Histogram::Snapshot snap = inst.histogram->snapshot();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
          cumulative += snap.counts[i];
          out << name << "_bucket"
              << encode_labels_with(inst.labels, "le",
                                    format_double(snap.bounds[i]))
              << " " << cumulative << "\n";
        }
        out << name << "_bucket"
            << encode_labels_with(inst.labels, "le", "+Inf") << " "
            << snap.count << "\n";
        out << name << "_sum" << key << " " << snap.sum << "\n";
        out << name << "_count" << key << " " << snap.count << "\n";
      }
    }
  }
  return out.str();
}

std::string MetricRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"metrics\":[";
  bool first = true;
  for (const auto& [name, fam] : families_) {
    for (const auto& [key, inst] : fam.instruments) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"" << json_escape(name) << "\",\"labels\":{";
      bool first_label = true;
      for (const auto& [lk, lv] : inst.labels) {
        if (!first_label) out << ",";
        first_label = false;
        out << "\"" << json_escape(lk) << "\":\"" << json_escape(lv) << "\"";
      }
      out << "},";
      if (fam.kind == Kind::kCounter) {
        out << "\"type\":\"counter\",\"value\":" << inst.counter->value();
      } else if (fam.kind == Kind::kGauge) {
        out << "\"type\":\"gauge\",\"value\":" << inst.gauge->value();
      } else {
        const Histogram::Snapshot snap = inst.histogram->snapshot();
        out << "\"type\":\"histogram\",\"count\":" << snap.count
            << ",\"sum\":" << snap.sum << ",\"buckets\":[";
        for (std::size_t i = 0; i < snap.counts.size(); ++i) {
          if (i > 0) out << ",";
          out << "{\"le\":";
          if (i < snap.bounds.size()) {
            out << snap.bounds[i];
          } else {
            out << "\"+Inf\"";
          }
          out << ",\"count\":" << snap.counts[i] << "}";
        }
        out << "]";
      }
      out << "}";
    }
  }
  out << "]}";
  return out.str();
}

}  // namespace pg::telemetry
