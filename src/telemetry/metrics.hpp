// Telemetry metric registry — the observability substrate for the proxy
// stack (ROADMAP: "you cannot optimize what you cannot measure").
//
// Design constraints, in order:
//   1. Hot-path increments (one per routed MPI message) must never contend
//      on a global lock: Counter and Histogram stripe their state across
//      cache-line-aligned shards indexed by a per-thread slot, so
//      concurrent writers touch disjoint lines and use only relaxed
//      atomics. Reads sum the shards.
//   2. Instrument lookup is mutex-protected but happens once per call
//      site: callers cache the returned reference (instruments are never
//      destroyed while the registry lives).
//   3. Export formats: Prometheus text exposition (served by
//      grid::WebInterface at /metrics) and JSON (for the experiment
//      harnesses).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pg::telemetry {

/// Metric labels, e.g. {{"site", "siteA"}}. Ordered so a label set has one
/// canonical encoding.
using Labels = std::map<std::string, std::string>;

namespace internal {
/// Stable per-thread shard slot. Threads are assigned round-robin at first
/// use, so up to kShardCount concurrent writers never share a cache line.
constexpr std::size_t kShardCount = 16;
std::size_t thread_shard();
}  // namespace internal

/// Monotonic counter with sharded relaxed atomics.
class Counter {
 public:
  void increment(std::uint64_t delta = 1) {
    shards_[internal::thread_shard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, internal::kShardCount> shards_;
};

/// Last-value gauge (single atomic; gauges are not hot-path).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket bounds are upper bounds (cumulative
/// `le` semantics, Prometheus-style); an implicit +Inf bucket catches the
/// rest. Counts and the running sum are sharded like Counter.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  /// Snapshot of the histogram, coherent enough for export (relaxed reads).
  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // per bucket, bounds.size() + 1
    std::uint64_t count = 0;
    double sum = 0;
  };
  Snapshot snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Shard {
    // Bucket counts live in the registry-owned flat array slice for this
    // shard; sum uses a CAS loop (atomic<double>::fetch_add is not
    // universally lock-free).
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // shard-major
  std::array<Shard, internal::kShardCount> shards_;
};

/// Default bucket sets.
std::vector<double> duration_buckets_micros();  // 1us .. 10s, log spaced
std::vector<double> size_buckets_bytes();       // 64B .. 16MiB

/// Thread-safe named-instrument registry.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Process-wide registry (what /metrics and the CLI export).
  static MetricRegistry& global();

  /// Returns the counter for (name, labels), creating it on first use.
  /// `help` is recorded on first creation of the family. The reference
  /// stays valid for the registry's lifetime.
  Counter& counter(const std::string& name, const std::string& help = "",
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help = "",
                       std::vector<double> bounds = duration_buckets_micros(),
                       const Labels& labels = {});

  /// Prometheus text exposition format (text/plain; version 0.0.4).
  std::string to_prometheus() const;
  /// One JSON object: {"metrics":[{name, type, labels, value...}, ...]}.
  std::string to_json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind;
    std::string help;
    // Keyed by canonical label encoding; pointers stable (node-based map).
    std::map<std::string, Instrument> instruments;
  };

  Family& family(const std::string& name, Kind kind, const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

/// RAII timer recording elapsed wall microseconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_.observe(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pg::telemetry
