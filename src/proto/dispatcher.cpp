#include "proto/dispatcher.hpp"

namespace pg::proto {

namespace {

telemetry::Counter& op_counter(OpCode op) {
  return telemetry::MetricRegistry::global().counter(
      "pg_proto_dispatched_total", "Envelopes dispatched, by op",
      {{"op", opcode_name(op)}});
}

telemetry::Histogram& dispatch_micros() {
  static telemetry::Histogram& histogram =
      telemetry::MetricRegistry::global().histogram(
          "pg_proto_dispatch_micros", "Dispatcher handler latency (microseconds)",
          telemetry::duration_buckets_micros(), {});
  return histogram;
}

}  // namespace

Status Dispatcher::register_handler(OpCode op, Handler handler) {
  auto [it, inserted] =
      handlers_.emplace(op, Entry{std::move(handler), &op_counter(op)});
  if (!inserted)
    return error(ErrorCode::kAlreadyExists,
                 std::string("handler already registered for ") +
                     opcode_name(op));
  return Status::ok();
}

void Dispatcher::set_handler(OpCode op, Handler handler) {
  handlers_[op] = Entry{std::move(handler), &op_counter(op)};
}

bool Dispatcher::has_handler(OpCode op) const {
  return handlers_.count(op) > 0;
}

Status Dispatcher::dispatch(const Envelope& envelope) const {
  const auto it = handlers_.find(envelope.op);
  if (it != handlers_.end()) {
    it->second.dispatched->increment();
    telemetry::ScopedTimer timer(dispatch_micros());
    return it->second.handler(envelope);
  }
  if (fallback_) {
    telemetry::ScopedTimer timer(dispatch_micros());
    return fallback_(envelope);
  }
  return error(ErrorCode::kNotFound,
               std::string("no handler for op ") + opcode_name(envelope.op));
}

}  // namespace pg::proto
