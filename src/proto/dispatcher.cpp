#include "proto/dispatcher.hpp"

namespace pg::proto {

Status Dispatcher::register_handler(OpCode op, Handler handler) {
  auto [it, inserted] = handlers_.emplace(op, std::move(handler));
  if (!inserted)
    return error(ErrorCode::kAlreadyExists,
                 std::string("handler already registered for ") +
                     opcode_name(op));
  return Status::ok();
}

void Dispatcher::set_handler(OpCode op, Handler handler) {
  handlers_[op] = std::move(handler);
}

bool Dispatcher::has_handler(OpCode op) const {
  return handlers_.count(op) > 0;
}

Status Dispatcher::dispatch(const Envelope& envelope) const {
  const auto it = handlers_.find(envelope.op);
  if (it != handlers_.end()) return it->second(envelope);
  if (fallback_) return fallback_(envelope);
  return error(ErrorCode::kNotFound,
               std::string("no handler for op ") + opcode_name(envelope.op));
}

}  // namespace pg::proto
