// Typed payloads for the inter-proxy control protocol.
//
// Every struct serializes to the Envelope payload for its op code. All
// parsers are safe on arbitrary input (see common/serde.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace pg::proto {

// ------------------------------------------------------------ membership

struct Hello {
  std::string site;           // announcing proxy's site name
  std::string proxy_subject;  // certificate subject, for cross-checking

  Bytes serialize() const;
  static Result<Hello> parse(BytesView data);
};

struct HelloAck {
  std::string site;
  bool accepted = false;
  std::string reason;

  Bytes serialize() const;
  static Result<HelloAck> parse(BytesView data);
};

// -------------------------------------------------------------- security

enum class AuthMethod : std::uint8_t {
  kPassword = 0,   // userid + password (paper, initial phase)
  kSignature = 1,  // digital signature (paper, layer 2)
  kTicket = 2,     // Kerberos-style ticket (paper, planned evolution)
};

struct AuthRequest {
  std::string user;
  AuthMethod method = AuthMethod::kPassword;
  /// password bytes / signature over challenge material / serialized ticket.
  Bytes credential;
  /// For kSignature: the timestamp the signature covers (replay window).
  std::uint64_t timestamp = 0;

  Bytes serialize() const;
  static Result<AuthRequest> parse(BytesView data);
};

struct AuthResponse {
  bool ok = false;
  std::string reason;
  /// Session token (or serialized ticket for kPassword logins that upgrade
  /// to ticket-based sessions).
  Bytes token;

  Bytes serialize() const;
  static Result<AuthResponse> parse(BytesView data);
};

// ------------------------------------------------- control & monitoring

/// One station's state (paper layer 3: "availability of RAM memory, CPU
/// and HD").
struct NodeStatus {
  std::string name;
  double cpu_capacity = 1.0;  // relative speed; 1.0 = reference node
  double cpu_load = 0.0;      // 0..1 utilization
  std::uint64_t ram_total_mb = 0;
  std::uint64_t ram_free_mb = 0;
  std::uint64_t disk_total_mb = 0;
  std::uint64_t disk_free_mb = 0;
  std::uint32_t running_processes = 0;
  std::uint64_t timestamp = 0;

  Bytes serialize() const;
  static Result<NodeStatus> parse(BytesView data);

  friend bool operator==(const NodeStatus&, const NodeStatus&) = default;
};

struct StatusQuery {
  /// Sites whose status is wanted; empty means "the receiving site".
  std::vector<std::string> sites;
  bool include_nodes = true;

  Bytes serialize() const;
  static Result<StatusQuery> parse(BytesView data);
};

struct StatusReport {
  std::string site;
  std::vector<NodeStatus> nodes;
  std::uint64_t timestamp = 0;

  Bytes serialize() const;
  static Result<StatusReport> parse(BytesView data);
};

/// Shard-group status gossip (v5, kShardStatus): one proxy shard's
/// partial view of its site — the nodes attached to THAT shard — plus
/// the collector-lease epoch it has observed. Siblings merge the partial
/// reports into a full site view and use the epoch to keep collector
/// handoffs ordered (a report gossiped before a handoff can never
/// overwrite one gossiped after it).
struct ShardStatus {
  std::string shard;          // sender shard id, e.g. "site1#2"
  std::uint64_t lease_epoch = 0;
  StatusReport report;        // report.site is the shard id too

  Bytes serialize() const;
  static Result<ShardStatus> parse(BytesView data);
};

struct JobSubmit {
  std::uint64_t job_id = 0;
  std::string user;
  std::string executable;
  std::vector<std::string> args;
  std::uint32_t ranks = 1;
  std::uint64_t min_ram_mb = 0;
  /// Sealed session ticket — remote submissions are re-authorized at the
  /// receiving proxy under the realm key.
  Bytes token;

  Bytes serialize() const;
  static Result<JobSubmit> parse(BytesView data);
};

struct JobAccept {
  std::uint64_t job_id = 0;
  bool accepted = false;
  std::string reason;

  Bytes serialize() const;
  static Result<JobAccept> parse(BytesView data);
};

struct JobComplete {
  std::uint64_t job_id = 0;
  std::uint32_t exit_code = 0;
  Bytes output;

  Bytes serialize() const;
  static Result<JobComplete> parse(BytesView data);
};

// ------------------------------------------------------------------ MPI

/// Where one MPI rank runs. The proxy uses this to build its virtual-slave
/// table: ranks on remote sites become virtual slaves locally.
struct RankPlacement {
  std::uint32_t rank = 0;
  std::string site;
  std::string node;

  friend bool operator==(const RankPlacement&, const RankPlacement&) = default;
};

struct MpiOpen {
  std::uint64_t app_id = 0;
  /// Name the application registered under (models the binary that is
  /// installed on every node — the paper assumes the MPI program exists at
  /// each site and is launched unmodified).
  std::string executable;
  std::uint32_t world_size = 0;
  std::vector<RankPlacement> placements;
  /// Submitting user and their sealed session ticket. The paper requires
  /// access permissions to be "validated at the originating and destination
  /// proxies" — destinations re-verify this ticket under the realm key.
  std::string user;
  Bytes token;

  Bytes serialize() const;
  static Result<MpiOpen> parse(BytesView data);
};

struct MpiOpenAck {
  std::uint64_t app_id = 0;
  bool ok = false;
  std::string reason;

  Bytes serialize() const;
  static Result<MpiOpenAck> parse(BytesView data);
};

struct MpiData {
  std::uint64_t app_id = 0;
  std::uint32_t src_rank = 0;
  std::uint32_t dst_rank = 0;
  std::uint32_t tag = 0;
  Bytes payload;

  Bytes serialize() const;
  static Result<MpiData> parse(BytesView data);
};

/// One logical MPI message inside a kMpiBatch envelope. `dst_ranks` with
/// more than one entry is a fan-out frame: the payload travels the link
/// once and the receiver delivers it to every listed rank (the proxy's
/// site-aware collective multiplexing).
struct MpiFrame {
  std::uint64_t app_id = 0;
  std::uint32_t src_rank = 0;
  std::uint32_t tag = 0;
  std::vector<std::uint32_t> dst_ranks;
  Bytes payload;

  friend bool operator==(const MpiFrame&, const MpiFrame&) = default;
};

/// kMpiBatch payload: MpiData-equivalent frames coalesced into one
/// envelope / one sealed record per link flush. (origin, seq) identifies
/// the batch so receivers can drop a duplicated or retransmitted batch
/// after the first delivery.
struct MpiBatch {
  /// Sender identity, unique per process: a proxy uses its site name, a
  /// node agent "<site>/<node>".
  std::string origin;
  /// Monotonic per sender; receivers keep a per-origin window of seen ids.
  std::uint64_t seq = 0;
  std::vector<MpiFrame> frames;

  Bytes serialize() const;
  static Result<MpiBatch> parse(BytesView data);
};

/// kMpiBatchAck payload: the receiver's delivery coverage for one batch
/// origin, sent back on the link a kMpiBatch arrived on. `cumulative` is
/// the highest seq S such that every batch in [1, S] from `origin` was
/// delivered on this link; `selective` lists seqs received beyond the
/// cumulative point (out-of-order arrivals whose predecessors are still
/// missing). Senders release every covered batch from their in-flight
/// window; anything uncovered retransmits at its RTO.
struct MpiBatchAck {
  std::string origin;
  std::uint64_t cumulative = 0;
  std::vector<std::uint64_t> selective;

  Bytes serialize() const;
  static Result<MpiBatchAck> parse(BytesView data);
};

struct MpiClose {
  std::uint64_t app_id = 0;

  Bytes serialize() const;
  static Result<MpiClose> parse(BytesView data);
};

/// Sent by a site that can no longer run its share of an app (a hosting
/// node died). The origin proxy fails the run with a retryable error.
struct MpiAbort {
  std::uint64_t app_id = 0;
  std::string reason;

  Bytes serialize() const;
  static Result<MpiAbort> parse(BytesView data);
};

// ------------------------------------------------------------- tunnels

struct TunnelOpen {
  std::uint64_t tunnel_id = 0;
  std::string target_site;
  std::string target_node;
  std::string target_service;

  Bytes serialize() const;
  static Result<TunnelOpen> parse(BytesView data);
};

struct TunnelData {
  std::uint64_t tunnel_id = 0;
  Bytes payload;

  Bytes serialize() const;
  static Result<TunnelData> parse(BytesView data);
};

struct TunnelClose {
  std::uint64_t tunnel_id = 0;

  Bytes serialize() const;
  static Result<TunnelClose> parse(BytesView data);
};

// ---------------------------------------------------------------- traces

/// One completed span exported toward the trace's origin proxy. Field for
/// field a telemetry::SpanRecord; kept separate so the wire format does
/// not pin the in-memory layout.
struct ExportedSpan {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::string name;
  std::string component;
  std::int64_t start_micros = 0;
  std::int64_t end_micros = 0;
  bool ok = true;
  std::string note;

  friend bool operator==(const ExportedSpan&, const ExportedSpan&) = default;
};

/// kTraceExport payload: spans a remote proxy finished for a trace it did
/// not originate, flowing hop-by-hop back to the origin so the whole grid
/// operation renders as one connected trace there.
struct TraceExport {
  std::string exporter_site;
  std::vector<ExportedSpan> spans;

  Bytes serialize() const;
  static Result<TraceExport> parse(BytesView data);
};

// --------------------------------------------------------------- errors

struct ErrorMessage {
  std::uint16_t code = 0;  // mirrors pg::ErrorCode
  std::string message;

  Bytes serialize() const;
  static Result<ErrorMessage> parse(BytesView data);
};

}  // namespace pg::proto
