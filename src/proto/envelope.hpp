// Inter-proxy control protocol: envelope and expandable op-code space
// (paper §3: "The control communication was standardized through the
// creation of a protocol used among the proxies. The codes used in this
// protocol can be expanded to deal with a new situation.")
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace pg::proto {

/// Version 2 added the trace-context pair; version 3 added the kMpiBatch
/// data-plane op; version 4 added kMpiBatchAck (the reliable data plane);
/// version 5 added kShardStatus (sharded proxy tier — see docs/PROTOCOL.md).
/// The header layout is unchanged since v2, so all of
/// [kMinProtocolVersion, kProtocolVersion] are accepted at parse time.
constexpr std::uint8_t kProtocolVersion = 5;
constexpr std::uint8_t kMinProtocolVersion = 2;

/// Well-known operation codes. The space is open: proxies route unknown
/// codes to registered extension handlers (see Dispatcher) instead of
/// failing, which is how the paper expects the protocol to grow.
enum class OpCode : std::uint16_t {
  // Layer 1: membership / liveness
  kHello = 1,
  kHelloAck = 2,
  kPing = 3,
  kPong = 4,
  /// Unsolicited keepalive on inter-proxy links. No payload, no reply —
  /// receipt alone refreshes the peer's liveness clock; a configurable run
  /// of missed intervals marks the site dead (docs/RESILIENCE.md).
  kHeartbeat = 5,

  // Layer 2: security
  kAuthRequest = 10,
  kAuthResponse = 11,

  // Layer 3: control & monitoring
  kStatusQuery = 20,
  kStatusReport = 21,
  /// Intra-site gossip between proxy shards of one site (v5): a shard's
  /// partial status report plus the collector-lease epoch, so any shard
  /// can answer for the whole site and lease handoffs stay ordered.
  kShardStatus = 22,
  kJobSubmit = 30,
  kJobAccept = 31,
  kJobComplete = 32,
  /// Poll a remote batch job's state; answered with kJobComplete.
  kJobQuery = 33,

  // Layer 4: MPI support
  kMpiOpen = 40,
  kMpiOpenAck = 41,
  kMpiData = 42,
  kMpiClose = 43,
  /// Second phase of application launch: sent only after every site acked
  /// kMpiOpen, so routing tables exist everywhere before any rank runs.
  kMpiStart = 44,
  /// Unsolicited completion notice (node -> proxy, remote proxy -> origin).
  kMpiDone = 45,
  /// Unsolicited failure notice (remote proxy -> origin): a site lost a
  /// node hosting ranks of the app. The origin fails the run with a
  /// retryable error so the job layer can re-dispatch it.
  kMpiAbort = 46,
  /// Coalesced MPI data frames (protocol v3): one envelope — one sealed
  /// record on GSSL links — carrying many MpiData-equivalent frames bound
  /// for the same destination, each addressable to multiple ranks (the
  /// site-aware collective fan-out). Payload is proto::MpiBatch.
  kMpiBatch = 47,
  /// Receiver -> sender acknowledgement of kMpiBatch deliveries (protocol
  /// v4): cumulative + selective (origin, seq) coverage, so senders can
  /// release their in-flight window and retransmit only what was lost.
  /// Payload is proto::MpiBatchAck. Unacknowledged batches retransmit on
  /// an RTO timer — the at-least-once half of the effectively-exactly-once
  /// data plane (the dedup window is the at-most-once half).
  kMpiBatchAck = 48,

  // Tunneling (explicit secure channels for site nodes)
  kTunnelOpen = 50,
  kTunnelData = 51,
  kTunnelClose = 52,

  /// Unsolicited span export (remote proxy -> origin proxy): completed
  /// trace-ring spans whose trace id was allocated elsewhere, forwarded
  /// hop-by-hop toward the proxy that originated the trace so one grid
  /// operation reads as a single connected trace there. Payload is
  /// proto::TraceExport.
  kTraceExport = 60,

  /// Generic response to an extension request: the payload layout is the
  /// extension's own. Lets new services get request/response semantics
  /// without touching the core response set.
  kReply = 98,
  kError = 99,

  // Extension codes start here; see Dispatcher::register_handler.
  kExtensionBase = 1000,
};

const char* opcode_name(OpCode op);

/// Every control message on the wire: version, op, correlation id, trace
/// context, payload.
struct Envelope {
  std::uint8_t version = kProtocolVersion;
  OpCode op = OpCode::kError;
  /// Correlates responses with requests; 0 for unsolicited messages.
  std::uint64_t request_id = 0;
  /// Distributed-trace context (telemetry/trace.hpp): the sender's trace id
  /// and span id, 0/0 when the operation is untraced. The receiving proxy
  /// installs this as the handler thread's current context, which is how
  /// one grid operation yields a single cross-site trace.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  Bytes payload;

  Bytes serialize() const;
  /// Serializes into `out`, reusing its capacity (hot send path).
  void serialize_into(Bytes& out) const;
  static Result<Envelope> deserialize(BytesView data);
};

/// Serializes an envelope straight from its parts into `out`, reusing its
/// capacity. Same wire bytes as Envelope::serialize(); lets senders skip
/// building an Envelope (and copying the payload into it) entirely.
void serialize_envelope(OpCode op, std::uint64_t request_id,
                        std::uint64_t trace_id, std::uint64_t span_id,
                        BytesView payload, Bytes& out);

}  // namespace pg::proto
