// Op-code dispatch with an open registration API — the mechanism behind the
// paper's "codes used in this protocol can be expanded" requirement.
#pragma once

#include <functional>
#include <map>

#include "common/status.hpp"
#include "proto/envelope.hpp"
#include "telemetry/metrics.hpp"

namespace pg::proto {

/// Routes incoming envelopes to per-op handlers. Extension op codes
/// (>= kExtensionBase) register exactly like built-ins, so new grid
/// services slot in without touching the proxy core.
class Dispatcher {
 public:
  /// A handler consumes the envelope and returns a status; protocol errors
  /// propagate to the connection loop, which reports them to the peer.
  using Handler = std::function<Status(const Envelope&)>;

  /// Fails with kAlreadyExists if the op already has a handler.
  Status register_handler(OpCode op, Handler handler);

  /// Replaces or installs unconditionally (used by tests and shims).
  void set_handler(OpCode op, Handler handler);

  bool has_handler(OpCode op) const;

  /// Invokes the matching handler, or the fallback, or fails kNotFound.
  Status dispatch(const Envelope& envelope) const;

  /// Called for ops with no registered handler (instead of kNotFound).
  void set_fallback(Handler handler) { fallback_ = std::move(handler); }

 private:
  // The per-op counter is resolved at registration so the dispatch path
  // pays only a sharded add, never a registry lookup.
  struct Entry {
    Handler handler;
    telemetry::Counter* dispatched = nullptr;
  };

  std::map<OpCode, Entry> handlers_;
  Handler fallback_;
};

}  // namespace pg::proto
