#include "proto/messages.hpp"

#include "common/serde.hpp"

namespace pg::proto {

namespace {
constexpr std::size_t kMaxListSize = 100000;  // sanity bound on repeated fields

Status get_count(BufferReader& r, std::uint64_t& n) {
  PG_RETURN_IF_ERROR(r.get_varint(n));
  if (n > kMaxListSize)
    return error(ErrorCode::kProtocolError, "repeated field too large");
  return Status::ok();
}
}  // namespace

// ------------------------------------------------------------ membership

Bytes Hello::serialize() const {
  BufferWriter w;
  w.put_string(site);
  w.put_string(proxy_subject);
  return w.take();
}

Result<Hello> Hello::parse(BytesView data) {
  BufferReader r(data);
  Hello m;
  PG_RETURN_IF_ERROR(r.get_string(m.site));
  PG_RETURN_IF_ERROR(r.get_string(m.proxy_subject));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

Bytes HelloAck::serialize() const {
  BufferWriter w;
  w.put_string(site);
  w.put_bool(accepted);
  w.put_string(reason);
  return w.take();
}

Result<HelloAck> HelloAck::parse(BytesView data) {
  BufferReader r(data);
  HelloAck m;
  PG_RETURN_IF_ERROR(r.get_string(m.site));
  PG_RETURN_IF_ERROR(r.get_bool(m.accepted));
  PG_RETURN_IF_ERROR(r.get_string(m.reason));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

// -------------------------------------------------------------- security

Bytes AuthRequest::serialize() const {
  BufferWriter w;
  w.put_string(user);
  w.put_u8(static_cast<std::uint8_t>(method));
  w.put_bytes(credential);
  w.put_u64(timestamp);
  return w.take();
}

Result<AuthRequest> AuthRequest::parse(BytesView data) {
  BufferReader r(data);
  AuthRequest m;
  std::uint8_t method_raw = 0;
  PG_RETURN_IF_ERROR(r.get_string(m.user));
  PG_RETURN_IF_ERROR(r.get_u8(method_raw));
  if (method_raw > static_cast<std::uint8_t>(AuthMethod::kTicket))
    return error(ErrorCode::kProtocolError, "unknown auth method");
  m.method = static_cast<AuthMethod>(method_raw);
  PG_RETURN_IF_ERROR(r.get_bytes(m.credential));
  PG_RETURN_IF_ERROR(r.get_u64(m.timestamp));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

Bytes AuthResponse::serialize() const {
  BufferWriter w;
  w.put_bool(ok);
  w.put_string(reason);
  w.put_bytes(token);
  return w.take();
}

Result<AuthResponse> AuthResponse::parse(BytesView data) {
  BufferReader r(data);
  AuthResponse m;
  PG_RETURN_IF_ERROR(r.get_bool(m.ok));
  PG_RETURN_IF_ERROR(r.get_string(m.reason));
  PG_RETURN_IF_ERROR(r.get_bytes(m.token));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

// ------------------------------------------------- control & monitoring

namespace {
void write_node_status(BufferWriter& w, const NodeStatus& n) {
  w.put_string(n.name);
  w.put_double(n.cpu_capacity);
  w.put_double(n.cpu_load);
  w.put_u64(n.ram_total_mb);
  w.put_u64(n.ram_free_mb);
  w.put_u64(n.disk_total_mb);
  w.put_u64(n.disk_free_mb);
  w.put_u32(n.running_processes);
  w.put_u64(n.timestamp);
}

Status read_node_status(BufferReader& r, NodeStatus& n) {
  PG_RETURN_IF_ERROR(r.get_string(n.name));
  PG_RETURN_IF_ERROR(r.get_double(n.cpu_capacity));
  PG_RETURN_IF_ERROR(r.get_double(n.cpu_load));
  PG_RETURN_IF_ERROR(r.get_u64(n.ram_total_mb));
  PG_RETURN_IF_ERROR(r.get_u64(n.ram_free_mb));
  PG_RETURN_IF_ERROR(r.get_u64(n.disk_total_mb));
  PG_RETURN_IF_ERROR(r.get_u64(n.disk_free_mb));
  PG_RETURN_IF_ERROR(r.get_u32(n.running_processes));
  PG_RETURN_IF_ERROR(r.get_u64(n.timestamp));
  return Status::ok();
}
}  // namespace

Bytes NodeStatus::serialize() const {
  BufferWriter w;
  write_node_status(w, *this);
  return w.take();
}

Result<NodeStatus> NodeStatus::parse(BytesView data) {
  BufferReader r(data);
  NodeStatus n;
  PG_RETURN_IF_ERROR(read_node_status(r, n));
  PG_RETURN_IF_ERROR(r.expect_end());
  return n;
}

Bytes StatusQuery::serialize() const {
  BufferWriter w;
  w.put_varint(sites.size());
  for (const auto& s : sites) w.put_string(s);
  w.put_bool(include_nodes);
  return w.take();
}

Result<StatusQuery> StatusQuery::parse(BytesView data) {
  BufferReader r(data);
  StatusQuery m;
  std::uint64_t n = 0;
  PG_RETURN_IF_ERROR(get_count(r, n));
  m.sites.resize(n);
  for (auto& s : m.sites) PG_RETURN_IF_ERROR(r.get_string(s));
  PG_RETURN_IF_ERROR(r.get_bool(m.include_nodes));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

Bytes StatusReport::serialize() const {
  BufferWriter w;
  w.put_string(site);
  w.put_varint(nodes.size());
  for (const auto& n : nodes) write_node_status(w, n);
  w.put_u64(timestamp);
  return w.take();
}

Result<StatusReport> StatusReport::parse(BytesView data) {
  BufferReader r(data);
  StatusReport m;
  PG_RETURN_IF_ERROR(r.get_string(m.site));
  std::uint64_t n = 0;
  PG_RETURN_IF_ERROR(get_count(r, n));
  m.nodes.resize(n);
  for (auto& node : m.nodes) PG_RETURN_IF_ERROR(read_node_status(r, node));
  PG_RETURN_IF_ERROR(r.get_u64(m.timestamp));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

Bytes ShardStatus::serialize() const {
  BufferWriter w;
  w.put_string(shard);
  w.put_u64(lease_epoch);
  w.put_string(report.site);
  w.put_varint(report.nodes.size());
  for (const auto& n : report.nodes) write_node_status(w, n);
  w.put_u64(report.timestamp);
  return w.take();
}

Result<ShardStatus> ShardStatus::parse(BytesView data) {
  BufferReader r(data);
  ShardStatus m;
  PG_RETURN_IF_ERROR(r.get_string(m.shard));
  PG_RETURN_IF_ERROR(r.get_u64(m.lease_epoch));
  PG_RETURN_IF_ERROR(r.get_string(m.report.site));
  std::uint64_t n = 0;
  PG_RETURN_IF_ERROR(get_count(r, n));
  m.report.nodes.resize(n);
  for (auto& node : m.report.nodes)
    PG_RETURN_IF_ERROR(read_node_status(r, node));
  PG_RETURN_IF_ERROR(r.get_u64(m.report.timestamp));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

Bytes JobSubmit::serialize() const {
  BufferWriter w;
  w.put_u64(job_id);
  w.put_string(user);
  w.put_string(executable);
  w.put_varint(args.size());
  for (const auto& a : args) w.put_string(a);
  w.put_u32(ranks);
  w.put_u64(min_ram_mb);
  w.put_bytes(token);
  return w.take();
}

Result<JobSubmit> JobSubmit::parse(BytesView data) {
  BufferReader r(data);
  JobSubmit m;
  PG_RETURN_IF_ERROR(r.get_u64(m.job_id));
  PG_RETURN_IF_ERROR(r.get_string(m.user));
  PG_RETURN_IF_ERROR(r.get_string(m.executable));
  std::uint64_t n = 0;
  PG_RETURN_IF_ERROR(get_count(r, n));
  m.args.resize(n);
  for (auto& a : m.args) PG_RETURN_IF_ERROR(r.get_string(a));
  PG_RETURN_IF_ERROR(r.get_u32(m.ranks));
  PG_RETURN_IF_ERROR(r.get_u64(m.min_ram_mb));
  PG_RETURN_IF_ERROR(r.get_bytes(m.token));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

Bytes JobAccept::serialize() const {
  BufferWriter w;
  w.put_u64(job_id);
  w.put_bool(accepted);
  w.put_string(reason);
  return w.take();
}

Result<JobAccept> JobAccept::parse(BytesView data) {
  BufferReader r(data);
  JobAccept m;
  PG_RETURN_IF_ERROR(r.get_u64(m.job_id));
  PG_RETURN_IF_ERROR(r.get_bool(m.accepted));
  PG_RETURN_IF_ERROR(r.get_string(m.reason));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

Bytes JobComplete::serialize() const {
  BufferWriter w;
  w.put_u64(job_id);
  w.put_u32(exit_code);
  w.put_bytes(output);
  return w.take();
}

Result<JobComplete> JobComplete::parse(BytesView data) {
  BufferReader r(data);
  JobComplete m;
  PG_RETURN_IF_ERROR(r.get_u64(m.job_id));
  PG_RETURN_IF_ERROR(r.get_u32(m.exit_code));
  PG_RETURN_IF_ERROR(r.get_bytes(m.output));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

// ------------------------------------------------------------------ MPI

Bytes MpiOpen::serialize() const {
  BufferWriter w;
  w.put_u64(app_id);
  w.put_string(executable);
  w.put_u32(world_size);
  w.put_varint(placements.size());
  for (const auto& p : placements) {
    w.put_u32(p.rank);
    w.put_string(p.site);
    w.put_string(p.node);
  }
  w.put_string(user);
  w.put_bytes(token);
  return w.take();
}

Result<MpiOpen> MpiOpen::parse(BytesView data) {
  BufferReader r(data);
  MpiOpen m;
  PG_RETURN_IF_ERROR(r.get_u64(m.app_id));
  PG_RETURN_IF_ERROR(r.get_string(m.executable));
  PG_RETURN_IF_ERROR(r.get_u32(m.world_size));
  std::uint64_t n = 0;
  PG_RETURN_IF_ERROR(get_count(r, n));
  m.placements.resize(n);
  for (auto& p : m.placements) {
    PG_RETURN_IF_ERROR(r.get_u32(p.rank));
    PG_RETURN_IF_ERROR(r.get_string(p.site));
    PG_RETURN_IF_ERROR(r.get_string(p.node));
  }
  PG_RETURN_IF_ERROR(r.get_string(m.user));
  PG_RETURN_IF_ERROR(r.get_bytes(m.token));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

Bytes MpiOpenAck::serialize() const {
  BufferWriter w;
  w.put_u64(app_id);
  w.put_bool(ok);
  w.put_string(reason);
  return w.take();
}

Result<MpiOpenAck> MpiOpenAck::parse(BytesView data) {
  BufferReader r(data);
  MpiOpenAck m;
  PG_RETURN_IF_ERROR(r.get_u64(m.app_id));
  PG_RETURN_IF_ERROR(r.get_bool(m.ok));
  PG_RETURN_IF_ERROR(r.get_string(m.reason));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

Bytes MpiData::serialize() const {
  BufferWriter w;
  w.put_u64(app_id);
  w.put_u32(src_rank);
  w.put_u32(dst_rank);
  w.put_u32(tag);
  w.put_bytes(payload);
  return w.take();
}

Result<MpiData> MpiData::parse(BytesView data) {
  BufferReader r(data);
  MpiData m;
  PG_RETURN_IF_ERROR(r.get_u64(m.app_id));
  PG_RETURN_IF_ERROR(r.get_u32(m.src_rank));
  PG_RETURN_IF_ERROR(r.get_u32(m.dst_rank));
  PG_RETURN_IF_ERROR(r.get_u32(m.tag));
  PG_RETURN_IF_ERROR(r.get_bytes(m.payload));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

Bytes MpiBatch::serialize() const {
  BufferWriter w;
  w.put_string(origin);
  w.put_u64(seq);
  w.put_varint(frames.size());
  for (const auto& f : frames) {
    w.put_u64(f.app_id);
    w.put_u32(f.src_rank);
    w.put_u32(f.tag);
    w.put_varint(f.dst_ranks.size());
    for (const std::uint32_t dst : f.dst_ranks) w.put_u32(dst);
    w.put_bytes(f.payload);
  }
  return w.take();
}

Result<MpiBatch> MpiBatch::parse(BytesView data) {
  BufferReader r(data);
  MpiBatch m;
  PG_RETURN_IF_ERROR(r.get_string(m.origin));
  PG_RETURN_IF_ERROR(r.get_u64(m.seq));
  std::uint64_t n = 0;
  PG_RETURN_IF_ERROR(get_count(r, n));
  m.frames.resize(n);
  for (auto& f : m.frames) {
    PG_RETURN_IF_ERROR(r.get_u64(f.app_id));
    PG_RETURN_IF_ERROR(r.get_u32(f.src_rank));
    PG_RETURN_IF_ERROR(r.get_u32(f.tag));
    std::uint64_t dsts = 0;
    PG_RETURN_IF_ERROR(get_count(r, dsts));
    f.dst_ranks.resize(dsts);
    for (auto& dst : f.dst_ranks) PG_RETURN_IF_ERROR(r.get_u32(dst));
    PG_RETURN_IF_ERROR(r.get_bytes(f.payload));
  }
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

Bytes MpiBatchAck::serialize() const {
  BufferWriter w;
  w.put_string(origin);
  w.put_u64(cumulative);
  w.put_varint(selective.size());
  for (const std::uint64_t seq : selective) w.put_u64(seq);
  return w.take();
}

Result<MpiBatchAck> MpiBatchAck::parse(BytesView data) {
  BufferReader r(data);
  MpiBatchAck m;
  PG_RETURN_IF_ERROR(r.get_string(m.origin));
  PG_RETURN_IF_ERROR(r.get_u64(m.cumulative));
  std::uint64_t n = 0;
  PG_RETURN_IF_ERROR(get_count(r, n));
  m.selective.resize(n);
  for (auto& seq : m.selective) PG_RETURN_IF_ERROR(r.get_u64(seq));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

Bytes MpiClose::serialize() const {
  BufferWriter w;
  w.put_u64(app_id);
  return w.take();
}

Result<MpiClose> MpiClose::parse(BytesView data) {
  BufferReader r(data);
  MpiClose m;
  PG_RETURN_IF_ERROR(r.get_u64(m.app_id));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

Bytes MpiAbort::serialize() const {
  BufferWriter w;
  w.put_u64(app_id);
  w.put_string(reason);
  return w.take();
}

Result<MpiAbort> MpiAbort::parse(BytesView data) {
  BufferReader r(data);
  MpiAbort m;
  PG_RETURN_IF_ERROR(r.get_u64(m.app_id));
  PG_RETURN_IF_ERROR(r.get_string(m.reason));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

// ------------------------------------------------------------- tunnels

Bytes TunnelOpen::serialize() const {
  BufferWriter w;
  w.put_u64(tunnel_id);
  w.put_string(target_site);
  w.put_string(target_node);
  w.put_string(target_service);
  return w.take();
}

Result<TunnelOpen> TunnelOpen::parse(BytesView data) {
  BufferReader r(data);
  TunnelOpen m;
  PG_RETURN_IF_ERROR(r.get_u64(m.tunnel_id));
  PG_RETURN_IF_ERROR(r.get_string(m.target_site));
  PG_RETURN_IF_ERROR(r.get_string(m.target_node));
  PG_RETURN_IF_ERROR(r.get_string(m.target_service));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

Bytes TunnelData::serialize() const {
  BufferWriter w;
  w.put_u64(tunnel_id);
  w.put_bytes(payload);
  return w.take();
}

Result<TunnelData> TunnelData::parse(BytesView data) {
  BufferReader r(data);
  TunnelData m;
  PG_RETURN_IF_ERROR(r.get_u64(m.tunnel_id));
  PG_RETURN_IF_ERROR(r.get_bytes(m.payload));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

Bytes TunnelClose::serialize() const {
  BufferWriter w;
  w.put_u64(tunnel_id);
  return w.take();
}

Result<TunnelClose> TunnelClose::parse(BytesView data) {
  BufferReader r(data);
  TunnelClose m;
  PG_RETURN_IF_ERROR(r.get_u64(m.tunnel_id));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

// ---------------------------------------------------------------- traces

Bytes TraceExport::serialize() const {
  BufferWriter w;
  w.put_string(exporter_site);
  w.put_varint(spans.size());
  for (const ExportedSpan& s : spans) {
    w.put_u64(s.trace_id);
    w.put_u64(s.span_id);
    w.put_u64(s.parent_span_id);
    w.put_string(s.name);
    w.put_string(s.component);
    w.put_u64(static_cast<std::uint64_t>(s.start_micros));
    w.put_u64(static_cast<std::uint64_t>(s.end_micros));
    w.put_bool(s.ok);
    w.put_string(s.note);
  }
  return w.take();
}

Result<TraceExport> TraceExport::parse(BytesView data) {
  BufferReader r(data);
  TraceExport m;
  PG_RETURN_IF_ERROR(r.get_string(m.exporter_site));
  std::uint64_t count = 0;
  PG_RETURN_IF_ERROR(get_count(r, count));
  m.spans.resize(count);
  for (ExportedSpan& s : m.spans) {
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    PG_RETURN_IF_ERROR(r.get_u64(s.trace_id));
    PG_RETURN_IF_ERROR(r.get_u64(s.span_id));
    PG_RETURN_IF_ERROR(r.get_u64(s.parent_span_id));
    PG_RETURN_IF_ERROR(r.get_string(s.name));
    PG_RETURN_IF_ERROR(r.get_string(s.component));
    PG_RETURN_IF_ERROR(r.get_u64(start));
    PG_RETURN_IF_ERROR(r.get_u64(end));
    s.start_micros = static_cast<std::int64_t>(start);
    s.end_micros = static_cast<std::int64_t>(end);
    PG_RETURN_IF_ERROR(r.get_bool(s.ok));
    PG_RETURN_IF_ERROR(r.get_string(s.note));
  }
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

// --------------------------------------------------------------- errors

Bytes ErrorMessage::serialize() const {
  BufferWriter w;
  w.put_u16(code);
  w.put_string(message);
  return w.take();
}

Result<ErrorMessage> ErrorMessage::parse(BytesView data) {
  BufferReader r(data);
  ErrorMessage m;
  PG_RETURN_IF_ERROR(r.get_u16(m.code));
  PG_RETURN_IF_ERROR(r.get_string(m.message));
  PG_RETURN_IF_ERROR(r.expect_end());
  return m;
}

}  // namespace pg::proto
