#include "proto/envelope.hpp"

#include "common/serde.hpp"

namespace pg::proto {

const char* opcode_name(OpCode op) {
  switch (op) {
    case OpCode::kHello: return "hello";
    case OpCode::kHelloAck: return "hello_ack";
    case OpCode::kPing: return "ping";
    case OpCode::kPong: return "pong";
    case OpCode::kHeartbeat: return "heartbeat";
    case OpCode::kAuthRequest: return "auth_request";
    case OpCode::kAuthResponse: return "auth_response";
    case OpCode::kStatusQuery: return "status_query";
    case OpCode::kStatusReport: return "status_report";
    case OpCode::kShardStatus: return "shard_status";
    case OpCode::kJobSubmit: return "job_submit";
    case OpCode::kJobAccept: return "job_accept";
    case OpCode::kJobComplete: return "job_complete";
    case OpCode::kJobQuery: return "job_query";
    case OpCode::kMpiOpen: return "mpi_open";
    case OpCode::kMpiOpenAck: return "mpi_open_ack";
    case OpCode::kMpiData: return "mpi_data";
    case OpCode::kMpiClose: return "mpi_close";
    case OpCode::kMpiStart: return "mpi_start";
    case OpCode::kMpiDone: return "mpi_done";
    case OpCode::kMpiAbort: return "mpi_abort";
    case OpCode::kMpiBatch: return "mpi_batch";
    case OpCode::kMpiBatchAck: return "mpi_batch_ack";
    case OpCode::kTunnelOpen: return "tunnel_open";
    case OpCode::kTunnelData: return "tunnel_data";
    case OpCode::kTunnelClose: return "tunnel_close";
    case OpCode::kTraceExport: return "trace_export";
    case OpCode::kReply: return "reply";
    case OpCode::kError: return "error";
    case OpCode::kExtensionBase: return "extension";
  }
  return static_cast<std::uint16_t>(op) >=
                 static_cast<std::uint16_t>(OpCode::kExtensionBase)
             ? "extension"
             : "unknown";
}

namespace {

inline void push_u64_be(Bytes& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

inline void push_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

}  // namespace

void serialize_envelope(OpCode op, std::uint64_t request_id,
                        std::uint64_t trace_id, std::uint64_t span_id,
                        BytesView payload, Bytes& out) {
  out.clear();
  out.reserve(3 + 3 * 8 + 10 + payload.size());
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(static_cast<std::uint16_t>(op) >> 8));
  out.push_back(static_cast<std::uint8_t>(static_cast<std::uint16_t>(op)));
  push_u64_be(out, request_id);
  push_u64_be(out, trace_id);
  push_u64_be(out, span_id);
  push_varint(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
}

void Envelope::serialize_into(Bytes& out) const {
  serialize_envelope(op, request_id, trace_id, span_id, payload, out);
  out[0] = version;  // honor a caller-overridden version byte
}

Bytes Envelope::serialize() const {
  Bytes out;
  serialize_into(out);
  return out;
}

Result<Envelope> Envelope::deserialize(BytesView data) {
  BufferReader r(data);
  Envelope env;
  std::uint16_t op_raw = 0;
  PG_RETURN_IF_ERROR(r.get_u8(env.version));
  if (env.version < kMinProtocolVersion || env.version > kProtocolVersion)
    return error(ErrorCode::kProtocolError,
                 "unsupported protocol version " +
                     std::to_string(env.version));
  PG_RETURN_IF_ERROR(r.get_u16(op_raw));
  env.op = static_cast<OpCode>(op_raw);
  PG_RETURN_IF_ERROR(r.get_u64(env.request_id));
  PG_RETURN_IF_ERROR(r.get_u64(env.trace_id));
  PG_RETURN_IF_ERROR(r.get_u64(env.span_id));
  PG_RETURN_IF_ERROR(r.get_bytes(env.payload));
  PG_RETURN_IF_ERROR(r.expect_end());
  return env;
}

}  // namespace pg::proto
