
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/dispatcher.cpp" "src/proto/CMakeFiles/pg_proto.dir/dispatcher.cpp.o" "gcc" "src/proto/CMakeFiles/pg_proto.dir/dispatcher.cpp.o.d"
  "/root/repo/src/proto/envelope.cpp" "src/proto/CMakeFiles/pg_proto.dir/envelope.cpp.o" "gcc" "src/proto/CMakeFiles/pg_proto.dir/envelope.cpp.o.d"
  "/root/repo/src/proto/messages.cpp" "src/proto/CMakeFiles/pg_proto.dir/messages.cpp.o" "gcc" "src/proto/CMakeFiles/pg_proto.dir/messages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
