file(REMOVE_RECURSE
  "libpg_proto.a"
)
