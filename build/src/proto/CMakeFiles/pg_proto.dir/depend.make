# Empty dependencies file for pg_proto.
# This may be replaced when dependencies are built.
