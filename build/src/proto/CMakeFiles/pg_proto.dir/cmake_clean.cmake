file(REMOVE_RECURSE
  "CMakeFiles/pg_proto.dir/dispatcher.cpp.o"
  "CMakeFiles/pg_proto.dir/dispatcher.cpp.o.d"
  "CMakeFiles/pg_proto.dir/envelope.cpp.o"
  "CMakeFiles/pg_proto.dir/envelope.cpp.o.d"
  "CMakeFiles/pg_proto.dir/messages.cpp.o"
  "CMakeFiles/pg_proto.dir/messages.cpp.o.d"
  "libpg_proto.a"
  "libpg_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
