# Empty compiler generated dependencies file for pg_mpi.
# This may be replaced when dependencies are built.
