file(REMOVE_RECURSE
  "CMakeFiles/pg_mpi.dir/comm.cpp.o"
  "CMakeFiles/pg_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/pg_mpi.dir/datatypes.cpp.o"
  "CMakeFiles/pg_mpi.dir/datatypes.cpp.o.d"
  "CMakeFiles/pg_mpi.dir/fabric.cpp.o"
  "CMakeFiles/pg_mpi.dir/fabric.cpp.o.d"
  "CMakeFiles/pg_mpi.dir/mailbox.cpp.o"
  "CMakeFiles/pg_mpi.dir/mailbox.cpp.o.d"
  "CMakeFiles/pg_mpi.dir/runtime.cpp.o"
  "CMakeFiles/pg_mpi.dir/runtime.cpp.o.d"
  "libpg_mpi.a"
  "libpg_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
