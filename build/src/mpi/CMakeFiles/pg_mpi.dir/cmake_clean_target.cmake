file(REMOVE_RECURSE
  "libpg_mpi.a"
)
