# Empty compiler generated dependencies file for pg_sched.
# This may be replaced when dependencies are built.
