file(REMOVE_RECURSE
  "CMakeFiles/pg_sched.dir/des.cpp.o"
  "CMakeFiles/pg_sched.dir/des.cpp.o.d"
  "CMakeFiles/pg_sched.dir/makespan.cpp.o"
  "CMakeFiles/pg_sched.dir/makespan.cpp.o.d"
  "CMakeFiles/pg_sched.dir/scheduler.cpp.o"
  "CMakeFiles/pg_sched.dir/scheduler.cpp.o.d"
  "libpg_sched.a"
  "libpg_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
