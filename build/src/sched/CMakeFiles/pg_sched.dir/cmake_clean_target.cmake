file(REMOVE_RECURSE
  "libpg_sched.a"
)
