
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/des.cpp" "src/sched/CMakeFiles/pg_sched.dir/des.cpp.o" "gcc" "src/sched/CMakeFiles/pg_sched.dir/des.cpp.o.d"
  "/root/repo/src/sched/makespan.cpp" "src/sched/CMakeFiles/pg_sched.dir/makespan.cpp.o" "gcc" "src/sched/CMakeFiles/pg_sched.dir/makespan.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/pg_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/pg_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/pg_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/pg_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
