# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("tls")
subdirs("net")
subdirs("sim")
subdirs("proto")
subdirs("auth")
subdirs("monitor")
subdirs("sched")
subdirs("mpi")
subdirs("proxy")
subdirs("gridfs")
subdirs("grid")
