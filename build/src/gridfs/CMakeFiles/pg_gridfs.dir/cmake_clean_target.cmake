file(REMOVE_RECURSE
  "libpg_gridfs.a"
)
