# Empty dependencies file for pg_gridfs.
# This may be replaced when dependencies are built.
