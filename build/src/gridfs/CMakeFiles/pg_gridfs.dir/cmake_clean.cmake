file(REMOVE_RECURSE
  "CMakeFiles/pg_gridfs.dir/gridfs.cpp.o"
  "CMakeFiles/pg_gridfs.dir/gridfs.cpp.o.d"
  "libpg_gridfs.a"
  "libpg_gridfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_gridfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
