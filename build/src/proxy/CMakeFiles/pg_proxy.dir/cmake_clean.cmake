file(REMOVE_RECURSE
  "CMakeFiles/pg_proxy.dir/connection.cpp.o"
  "CMakeFiles/pg_proxy.dir/connection.cpp.o.d"
  "CMakeFiles/pg_proxy.dir/job_manager.cpp.o"
  "CMakeFiles/pg_proxy.dir/job_manager.cpp.o.d"
  "CMakeFiles/pg_proxy.dir/node_agent.cpp.o"
  "CMakeFiles/pg_proxy.dir/node_agent.cpp.o.d"
  "CMakeFiles/pg_proxy.dir/proxy_server.cpp.o"
  "CMakeFiles/pg_proxy.dir/proxy_server.cpp.o.d"
  "libpg_proxy.a"
  "libpg_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
