# Empty compiler generated dependencies file for pg_proxy.
# This may be replaced when dependencies are built.
