file(REMOVE_RECURSE
  "libpg_proxy.a"
)
