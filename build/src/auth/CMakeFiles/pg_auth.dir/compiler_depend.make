# Empty compiler generated dependencies file for pg_auth.
# This may be replaced when dependencies are built.
