file(REMOVE_RECURSE
  "libpg_auth.a"
)
