
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/auth/acl.cpp" "src/auth/CMakeFiles/pg_auth.dir/acl.cpp.o" "gcc" "src/auth/CMakeFiles/pg_auth.dir/acl.cpp.o.d"
  "/root/repo/src/auth/authenticator.cpp" "src/auth/CMakeFiles/pg_auth.dir/authenticator.cpp.o" "gcc" "src/auth/CMakeFiles/pg_auth.dir/authenticator.cpp.o.d"
  "/root/repo/src/auth/password.cpp" "src/auth/CMakeFiles/pg_auth.dir/password.cpp.o" "gcc" "src/auth/CMakeFiles/pg_auth.dir/password.cpp.o.d"
  "/root/repo/src/auth/signature.cpp" "src/auth/CMakeFiles/pg_auth.dir/signature.cpp.o" "gcc" "src/auth/CMakeFiles/pg_auth.dir/signature.cpp.o.d"
  "/root/repo/src/auth/ticket.cpp" "src/auth/CMakeFiles/pg_auth.dir/ticket.cpp.o" "gcc" "src/auth/CMakeFiles/pg_auth.dir/ticket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/pg_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
