file(REMOVE_RECURSE
  "CMakeFiles/pg_auth.dir/acl.cpp.o"
  "CMakeFiles/pg_auth.dir/acl.cpp.o.d"
  "CMakeFiles/pg_auth.dir/authenticator.cpp.o"
  "CMakeFiles/pg_auth.dir/authenticator.cpp.o.d"
  "CMakeFiles/pg_auth.dir/password.cpp.o"
  "CMakeFiles/pg_auth.dir/password.cpp.o.d"
  "CMakeFiles/pg_auth.dir/signature.cpp.o"
  "CMakeFiles/pg_auth.dir/signature.cpp.o.d"
  "CMakeFiles/pg_auth.dir/ticket.cpp.o"
  "CMakeFiles/pg_auth.dir/ticket.cpp.o.d"
  "libpg_auth.a"
  "libpg_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
