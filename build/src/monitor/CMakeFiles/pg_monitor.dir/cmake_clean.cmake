file(REMOVE_RECURSE
  "CMakeFiles/pg_monitor.dir/aggregator.cpp.o"
  "CMakeFiles/pg_monitor.dir/aggregator.cpp.o.d"
  "CMakeFiles/pg_monitor.dir/site_collector.cpp.o"
  "CMakeFiles/pg_monitor.dir/site_collector.cpp.o.d"
  "CMakeFiles/pg_monitor.dir/stats_source.cpp.o"
  "CMakeFiles/pg_monitor.dir/stats_source.cpp.o.d"
  "libpg_monitor.a"
  "libpg_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
