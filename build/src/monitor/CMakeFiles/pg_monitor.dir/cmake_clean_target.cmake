file(REMOVE_RECURSE
  "libpg_monitor.a"
)
