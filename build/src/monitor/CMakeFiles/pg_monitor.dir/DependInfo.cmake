
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/aggregator.cpp" "src/monitor/CMakeFiles/pg_monitor.dir/aggregator.cpp.o" "gcc" "src/monitor/CMakeFiles/pg_monitor.dir/aggregator.cpp.o.d"
  "/root/repo/src/monitor/site_collector.cpp" "src/monitor/CMakeFiles/pg_monitor.dir/site_collector.cpp.o" "gcc" "src/monitor/CMakeFiles/pg_monitor.dir/site_collector.cpp.o.d"
  "/root/repo/src/monitor/stats_source.cpp" "src/monitor/CMakeFiles/pg_monitor.dir/stats_source.cpp.o" "gcc" "src/monitor/CMakeFiles/pg_monitor.dir/stats_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/pg_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
