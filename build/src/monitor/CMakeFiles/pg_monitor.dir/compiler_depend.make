# Empty compiler generated dependencies file for pg_monitor.
# This may be replaced when dependencies are built.
