file(REMOVE_RECURSE
  "CMakeFiles/pg_common.dir/bytes.cpp.o"
  "CMakeFiles/pg_common.dir/bytes.cpp.o.d"
  "CMakeFiles/pg_common.dir/logging.cpp.o"
  "CMakeFiles/pg_common.dir/logging.cpp.o.d"
  "CMakeFiles/pg_common.dir/rng.cpp.o"
  "CMakeFiles/pg_common.dir/rng.cpp.o.d"
  "CMakeFiles/pg_common.dir/serde.cpp.o"
  "CMakeFiles/pg_common.dir/serde.cpp.o.d"
  "CMakeFiles/pg_common.dir/status.cpp.o"
  "CMakeFiles/pg_common.dir/status.cpp.o.d"
  "CMakeFiles/pg_common.dir/thread_pool.cpp.o"
  "CMakeFiles/pg_common.dir/thread_pool.cpp.o.d"
  "libpg_common.a"
  "libpg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
