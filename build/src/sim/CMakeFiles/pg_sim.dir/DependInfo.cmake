
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/pg_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/pg_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/network_model.cpp" "src/sim/CMakeFiles/pg_sim.dir/network_model.cpp.o" "gcc" "src/sim/CMakeFiles/pg_sim.dir/network_model.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/pg_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/pg_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/pg_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/pg_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
