file(REMOVE_RECURSE
  "CMakeFiles/pg_sim.dir/event_queue.cpp.o"
  "CMakeFiles/pg_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/pg_sim.dir/network_model.cpp.o"
  "CMakeFiles/pg_sim.dir/network_model.cpp.o.d"
  "CMakeFiles/pg_sim.dir/workload.cpp.o"
  "CMakeFiles/pg_sim.dir/workload.cpp.o.d"
  "libpg_sim.a"
  "libpg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
