file(REMOVE_RECURSE
  "libpg_grid.a"
)
