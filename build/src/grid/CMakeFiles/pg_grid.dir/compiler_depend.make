# Empty compiler generated dependencies file for pg_grid.
# This may be replaced when dependencies are built.
