file(REMOVE_RECURSE
  "CMakeFiles/pg_grid.dir/cli.cpp.o"
  "CMakeFiles/pg_grid.dir/cli.cpp.o.d"
  "CMakeFiles/pg_grid.dir/grid.cpp.o"
  "CMakeFiles/pg_grid.dir/grid.cpp.o.d"
  "CMakeFiles/pg_grid.dir/web.cpp.o"
  "CMakeFiles/pg_grid.dir/web.cpp.o.d"
  "libpg_grid.a"
  "libpg_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
