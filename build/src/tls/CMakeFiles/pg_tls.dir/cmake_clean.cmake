file(REMOVE_RECURSE
  "CMakeFiles/pg_tls.dir/gssl.cpp.o"
  "CMakeFiles/pg_tls.dir/gssl.cpp.o.d"
  "CMakeFiles/pg_tls.dir/link.cpp.o"
  "CMakeFiles/pg_tls.dir/link.cpp.o.d"
  "CMakeFiles/pg_tls.dir/record.cpp.o"
  "CMakeFiles/pg_tls.dir/record.cpp.o.d"
  "libpg_tls.a"
  "libpg_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
