file(REMOVE_RECURSE
  "libpg_tls.a"
)
