
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tls/gssl.cpp" "src/tls/CMakeFiles/pg_tls.dir/gssl.cpp.o" "gcc" "src/tls/CMakeFiles/pg_tls.dir/gssl.cpp.o.d"
  "/root/repo/src/tls/link.cpp" "src/tls/CMakeFiles/pg_tls.dir/link.cpp.o" "gcc" "src/tls/CMakeFiles/pg_tls.dir/link.cpp.o.d"
  "/root/repo/src/tls/record.cpp" "src/tls/CMakeFiles/pg_tls.dir/record.cpp.o" "gcc" "src/tls/CMakeFiles/pg_tls.dir/record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pg_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
