# Empty dependencies file for pg_tls.
# This may be replaced when dependencies are built.
