file(REMOVE_RECURSE
  "CMakeFiles/pg_crypto.dir/bigint.cpp.o"
  "CMakeFiles/pg_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/pg_crypto.dir/cert.cpp.o"
  "CMakeFiles/pg_crypto.dir/cert.cpp.o.d"
  "CMakeFiles/pg_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/pg_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/pg_crypto.dir/hmac.cpp.o"
  "CMakeFiles/pg_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/pg_crypto.dir/rsa.cpp.o"
  "CMakeFiles/pg_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/pg_crypto.dir/sha256.cpp.o"
  "CMakeFiles/pg_crypto.dir/sha256.cpp.o.d"
  "libpg_crypto.a"
  "libpg_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
