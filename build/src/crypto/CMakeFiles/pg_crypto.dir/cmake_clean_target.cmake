file(REMOVE_RECURSE
  "libpg_crypto.a"
)
