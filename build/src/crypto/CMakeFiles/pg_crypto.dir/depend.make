# Empty dependencies file for pg_crypto.
# This may be replaced when dependencies are built.
