file(REMOVE_RECURSE
  "CMakeFiles/pg_net.dir/channel.cpp.o"
  "CMakeFiles/pg_net.dir/channel.cpp.o.d"
  "CMakeFiles/pg_net.dir/framer.cpp.o"
  "CMakeFiles/pg_net.dir/framer.cpp.o.d"
  "CMakeFiles/pg_net.dir/memory_channel.cpp.o"
  "CMakeFiles/pg_net.dir/memory_channel.cpp.o.d"
  "CMakeFiles/pg_net.dir/tcp.cpp.o"
  "CMakeFiles/pg_net.dir/tcp.cpp.o.d"
  "libpg_net.a"
  "libpg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
