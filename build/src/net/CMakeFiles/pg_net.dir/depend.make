# Empty dependencies file for pg_net.
# This may be replaced when dependencies are built.
