file(REMOVE_RECURSE
  "libpg_net.a"
)
