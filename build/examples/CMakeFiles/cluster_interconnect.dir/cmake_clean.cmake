file(REMOVE_RECURSE
  "CMakeFiles/cluster_interconnect.dir/cluster_interconnect.cpp.o"
  "CMakeFiles/cluster_interconnect.dir/cluster_interconnect.cpp.o.d"
  "cluster_interconnect"
  "cluster_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
