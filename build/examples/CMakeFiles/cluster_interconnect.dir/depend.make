# Empty dependencies file for cluster_interconnect.
# This may be replaced when dependencies are built.
