# Empty dependencies file for tcp_sites.
# This may be replaced when dependencies are built.
