file(REMOVE_RECURSE
  "CMakeFiles/tcp_sites.dir/tcp_sites.cpp.o"
  "CMakeFiles/tcp_sites.dir/tcp_sites.cpp.o.d"
  "tcp_sites"
  "tcp_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
