# Empty compiler generated dependencies file for grid_monitor.
# This may be replaced when dependencies are built.
