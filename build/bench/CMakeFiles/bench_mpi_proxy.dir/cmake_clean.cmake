file(REMOVE_RECURSE
  "CMakeFiles/bench_mpi_proxy.dir/bench_mpi_proxy.cpp.o"
  "CMakeFiles/bench_mpi_proxy.dir/bench_mpi_proxy.cpp.o.d"
  "bench_mpi_proxy"
  "bench_mpi_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mpi_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
