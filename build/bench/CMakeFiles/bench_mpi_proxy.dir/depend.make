# Empty dependencies file for bench_mpi_proxy.
# This may be replaced when dependencies are built.
