file(REMOVE_RECURSE
  "CMakeFiles/bench_tunnel_overhead.dir/bench_tunnel_overhead.cpp.o"
  "CMakeFiles/bench_tunnel_overhead.dir/bench_tunnel_overhead.cpp.o.d"
  "bench_tunnel_overhead"
  "bench_tunnel_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tunnel_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
