# Empty compiler generated dependencies file for bench_tunnel_overhead.
# This may be replaced when dependencies are built.
