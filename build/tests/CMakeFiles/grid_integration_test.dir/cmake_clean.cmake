file(REMOVE_RECURSE
  "CMakeFiles/grid_integration_test.dir/grid_integration_test.cpp.o"
  "CMakeFiles/grid_integration_test.dir/grid_integration_test.cpp.o.d"
  "grid_integration_test"
  "grid_integration_test.pdb"
  "grid_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
