
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/grid_integration_test.cpp" "tests/CMakeFiles/grid_integration_test.dir/grid_integration_test.cpp.o" "gcc" "tests/CMakeFiles/grid_integration_test.dir/grid_integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/pg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/gridfs/CMakeFiles/pg_gridfs.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/pg_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/pg_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/pg_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/pg_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/pg_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/pg_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/pg_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
