# Empty dependencies file for grid_integration_test.
# This may be replaced when dependencies are built.
