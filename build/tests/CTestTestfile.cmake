# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/tls_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/auth_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/proxy_test[1]_include.cmake")
include("/root/repo/build/tests/grid_integration_test[1]_include.cmake")
include("/root/repo/build/tests/services_test[1]_include.cmake")
include("/root/repo/build/tests/des_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
