// Data grid: GridFS (the protocol-extension file service) plus the web
// portal — the paper's "distributed filing systems" future work and its
// "Web page at the user's disposal", running on the proxy architecture.
//
// A dataset is partitioned across two sites' stores, a distributed word
// count runs over it, and the result is written back and fetched over the
// grid — then the same grid is inspected through HTTP.
#include <cstdio>
#include <sstream>

#include "grid/grid.hpp"
#include "grid/web.hpp"
#include "gridfs/gridfs.hpp"
#include "mpi/datatypes.hpp"
#include "mpi/runtime.hpp"
#include "net/tcp.hpp"

using namespace pg;

namespace {
// Shared handles the MPI app uses to reach the file service (in a real
// deployment ranks would reach their site's store via the node agent; here
// the stores are process-global like the app registry).
gridfs::GridFileService* g_fs = nullptr;
Bytes g_token;

std::string http_get(std::uint16_t port, const std::string& path) {
  auto conn = net::tcp_connect("127.0.0.1", port);
  if (!conn.is_ok()) return "";
  (void)conn.value()->write(
      to_bytes("GET " + path + " HTTP/1.0\r\n\r\n"));
  std::string out;
  std::uint8_t buf[4096];
  for (;;) {
    Result<std::size_t> n = conn.value()->read(buf, sizeof(buf));
    if (!n.is_ok() || n.value() == 0) break;
    out.append(reinterpret_cast<char*>(buf), n.value());
  }
  return out;
}
}  // namespace

int main() {
  // Word-count over sharded files: each rank fetches its shard from
  // whichever site stores it, counts words, and rank 0 reduces the total.
  mpi::AppRegistry::instance().register_app(
      "wordcount", [](mpi::Comm& comm) -> Status {
        const std::string site = comm.rank() % 2 == 0 ? "archiveA" : "archiveB";
        const std::string shard = "shard" + std::to_string(comm.rank());
        Result<Bytes> data = g_fs->get(g_token, site, shard);
        if (!data.is_ok()) return data.status();

        std::istringstream in(to_string(data.value()));
        std::string word;
        double count = 0;
        while (in >> word) ++count;

        Result<double> total = comm.reduce(0, count, mpi::ReduceOp::kSum);
        if (!total.is_ok()) return total.status();
        if (comm.rank() == 0) {
          const std::string report =
              "total words: " + std::to_string(static_cast<long>(total.value()));
          return g_fs->put(g_token, "analyst", "archiveA", "result.txt",
                           to_bytes(report));
        }
        return Status::ok();
      });

  grid::GridBuilder builder;
  builder.seed(55)
      .add_nodes("archiveA", 2)
      .add_nodes("archiveB", 2)
      .add_user("analyst", "pw",
                {"mpi.run", "status.query", "job.submit", "fs.read",
                 "fs.write"});
  auto grid = builder.build();
  if (!grid.is_ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 grid.status().to_string().c_str());
    return 1;
  }

  auto fs_a = gridfs::GridFileService::attach(grid.value()->proxy("archiveA"));
  auto fs_b = gridfs::GridFileService::attach(grid.value()->proxy("archiveB"));
  if (!fs_a.is_ok() || !fs_b.is_ok()) return 1;

  auto token = grid.value()->login("archiveA", "analyst", "pw");
  if (!token.is_ok()) return 1;
  g_fs = fs_a.value().get();
  g_token = token.value();

  // Stage four shards, alternating sites; odd shards cross the GSSL tunnel.
  const char* texts[] = {
      "the quick brown fox", "jumps over the lazy dog",
      "grid computing is the next step", "in large distributed systems"};
  for (int i = 0; i < 4; ++i) {
    const std::string site = i % 2 == 0 ? "archiveA" : "archiveB";
    const Status stored = fs_a.value()->put(
        g_token, "analyst", site, "shard" + std::to_string(i),
        to_bytes(texts[i]));
    if (!stored.is_ok()) {
      std::fprintf(stderr, "stage failed: %s\n", stored.to_string().c_str());
      return 1;
    }
  }
  std::printf("staged 4 shards: %zu at archiveA, %zu at archiveB\n",
              fs_a.value()->local_file_count(),
              fs_b.value()->local_file_count());

  // Run the distributed word count (4 ranks, spread round-robin).
  const proxy::AppRunResult result = grid.value()->run_app(
      "archiveA", "analyst", g_token, "wordcount", 4,
      grid::SchedulerPolicy::kRoundRobin);
  if (!result.status.is_ok()) {
    std::fprintf(stderr, "wordcount failed: %s\n",
                 result.status.to_string().c_str());
    return 1;
  }
  Result<Bytes> report = fs_a.value()->get(g_token, "archiveA", "result.txt");
  if (!report.is_ok()) return 1;
  std::printf("wordcount: %s\n", to_string(report.value()).c_str());

  // Inspect the same grid through the web portal.
  grid::WebInterface web(*grid.value(), "archiveA");
  if (!web.start("analyst", "pw").is_ok()) return 1;
  std::printf("web portal on 127.0.0.1:%u\n", web.port());
  const std::string status_json = http_get(web.port(), "/status.json");
  const std::size_t body = status_json.find("\r\n\r\n");
  std::printf("GET /status.json -> %s\n",
              body == std::string::npos
                  ? "(no body)"
                  : status_json.substr(body + 4, 120).c_str());
  web.stop();
  std::printf("done\n");
  return 0;
}
