// Grid operations walk-through using the command-line access layer (paper
// layer "Web Access Interface / Command line") — monitoring, scheduling
// comparison, and the failure-containment property of distributed control.
#include <iostream>
#include <sstream>

#include "grid/cli.hpp"
#include "grid/grid.hpp"
#include "mpi/runtime.hpp"

using namespace pg;

namespace {
void shell(grid::CommandLine& cli, const std::string& command) {
  std::cout << "grid> " << command << "\n";
  std::ostringstream out;
  cli.execute(command, out);
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) std::cout << "  " << line << "\n";
}
}  // namespace

int main() {
  // A do-nothing burner app so scheduling decisions are visible.
  mpi::AppRegistry::instance().register_app(
      "burn", [](mpi::Comm& comm) -> Status { return comm.barrier(); });

  // Three sites with very different hardware: siteC is 4x faster.
  grid::GridBuilder builder;
  builder.seed(33)
      .add_nodes("siteA", 3, 1.0)
      .add_nodes("siteB", 3, 1.0)
      .add_nodes("siteC", 2, 4.0)
      .add_user("admin", "secret", {"mpi.run", "status.query", "job.submit"});
  auto grid = builder.build();
  if (!grid.is_ok()) {
    std::cerr << "build failed: " << grid.status().to_string() << "\n";
    return 1;
  }

  grid::CommandLine cli(*grid.value(), "siteA");

  std::cout << "== session ==\n";
  shell(cli, "login siteA admin secret");
  shell(cli, "whoami");
  shell(cli, "peers siteA");

  std::cout << "\n== monitoring (distributed per-site collection) ==\n";
  shell(cli, "status");
  shell(cli, "status siteC");

  std::cout << "\n== scheduling: round-robin vs load-balanced ==\n";
  shell(cli, "run burn 8 rr");
  shell(cli, "run burn 8 lb");
  std::cout << "  (lb packs more ranks onto siteC's 4x nodes)\n";

  std::cout << "\n== failure containment ==\n";
  std::cout << "killing siteB's proxy...\n";
  grid.value()->kill_proxy("siteB");
  shell(cli, "status");
  std::cout << "  (siteB is gone; siteA and siteC keep answering — the\n"
               "   distributed control the paper promises)\n";
  shell(cli, "run burn 4 lb");

  return 0;
}
