// Cluster interconnection — the paper's flagship scenario (§3): two
// clusters joined into "a single virtual cluster" through their border
// proxies, with traffic "tunneled only among cluster edges and not inside
// them".
//
// The example runs the same halo-exchange stencil application in three
// deployments and prints the security overhead of each:
//   1. one local cluster (paper Figure 3a — no proxies at all)
//   2. two clusters via proxy edge tunneling (Figure 3b, the paper design)
//   3. two clusters with per-node security (the Globus-like baseline)
#include <cstdio>

#include "grid/grid.hpp"
#include "mpi/datatypes.hpp"
#include "mpi/runtime.hpp"

using namespace pg;

namespace {

/// 1-D halo-exchange stencil: each rank owns a block, iteratively averages
/// with neighbour halos. Communication-heavy — exactly the pattern where
/// per-node encryption hurts.
Status stencil_app(mpi::Comm& comm) {
  constexpr int kIterations = 8;
  constexpr std::size_t kBlock = 512;

  std::vector<double> block(kBlock, static_cast<double>(comm.rank()));
  const std::uint32_t left =
      (comm.rank() + comm.size() - 1) % comm.size();
  const std::uint32_t right = (comm.rank() + 1) % comm.size();

  for (int iter = 0; iter < kIterations; ++iter) {
    // Send halos both ways, then receive both (eager sends never block).
    PG_RETURN_IF_ERROR(comm.send(left, 1, mpi::pack_double(block.front())));
    PG_RETURN_IF_ERROR(comm.send(right, 2, mpi::pack_double(block.back())));
    Result<Bytes> from_right = comm.recv(static_cast<std::int32_t>(right), 1);
    if (!from_right.is_ok()) return from_right.status();
    Result<Bytes> from_left = comm.recv(static_cast<std::int32_t>(left), 2);
    if (!from_left.is_ok()) return from_left.status();

    const double right_halo = mpi::unpack_double(from_right.value()).value();
    const double left_halo = mpi::unpack_double(from_left.value()).value();
    for (std::size_t i = 0; i < kBlock; ++i) {
      const double l = i == 0 ? left_halo : block[i - 1];
      const double r = i == kBlock - 1 ? right_halo : block[i + 1];
      block[i] = (l + block[i] + r) / 3.0;
    }
    PG_RETURN_IF_ERROR(comm.barrier());
  }
  return Status::ok();
}

struct DeploymentCost {
  std::uint64_t crypto_bytes;
  std::uint64_t handshakes;
  std::uint64_t wire_bytes;
};

DeploymentCost run_two_cluster_deployment(proxy::SecurityMode mode,
                                          std::uint32_t ranks) {
  grid::GridBuilder builder;
  builder.seed(21)
      .security_mode(mode)
      .add_nodes("clusterA", 4)
      .add_nodes("clusterB", 4)
      .add_user("operator", "pw", {"mpi.run", "status.query"});
  auto grid = builder.build();
  if (!grid.is_ok()) return {};

  auto token = grid.value()->login("clusterA", "operator", "pw");
  const proxy::AppRunResult result = grid.value()->run_app(
      "clusterA", "operator", token.value(), "stencil", ranks,
      grid::SchedulerPolicy::kRoundRobin);
  if (!result.status.is_ok()) {
    std::fprintf(stderr, "deployment run failed: %s\n",
                 result.status.to_string().c_str());
  }

  const grid::TrafficReport traffic = grid.value()->traffic_report();
  return DeploymentCost{
      traffic.inter_site.crypto_bytes + traffic.intra_site.crypto_bytes,
      traffic.handshakes,
      traffic.inter_site.wire_bytes + traffic.intra_site.wire_bytes};
}

}  // namespace

int main() {
  mpi::AppRegistry::instance().register_app("stencil", stencil_app);
  constexpr std::uint32_t kRanks = 8;

  std::printf("halo-exchange stencil, %u ranks\n\n", kRanks);

  // Deployment 1: one local cluster, no proxies (Figure 3a).
  const mpi::RunReport local = mpi::run_local(stencil_app, kRanks);
  std::printf("[1] single local cluster (no grid middleware): %s\n",
              local.status.is_ok() ? "ok" : local.status.to_string().c_str());
  std::printf("    crypto bytes: 0, handshakes: 0 (nothing to protect)\n\n");

  // Deployment 2: two clusters, proxy edge tunneling (Figure 3b).
  const DeploymentCost proxy_cost =
      run_two_cluster_deployment(proxy::SecurityMode::kProxyTunneling, kRanks);
  std::printf("[2] two clusters, proxy edge tunneling (the paper):\n");
  std::printf("    crypto bytes: %llu, handshakes: %llu, wire: %llu\n\n",
              static_cast<unsigned long long>(proxy_cost.crypto_bytes),
              static_cast<unsigned long long>(proxy_cost.handshakes),
              static_cast<unsigned long long>(proxy_cost.wire_bytes));

  // Deployment 3: per-node security (Globus-like baseline).
  const DeploymentCost pernode_cost = run_two_cluster_deployment(
      proxy::SecurityMode::kPerNodeSecurity, kRanks);
  std::printf("[3] two clusters, per-node security (baseline):\n");
  std::printf("    crypto bytes: %llu, handshakes: %llu, wire: %llu\n\n",
              static_cast<unsigned long long>(pernode_cost.crypto_bytes),
              static_cast<unsigned long long>(pernode_cost.handshakes),
              static_cast<unsigned long long>(pernode_cost.wire_bytes));

  if (pernode_cost.crypto_bytes > 0 && proxy_cost.crypto_bytes > 0) {
    std::printf("edge tunneling ciphers %.1fx fewer bytes than per-node "
                "security for the same application\n",
                static_cast<double>(pernode_cost.crypto_bytes) /
                    static_cast<double>(proxy_cost.crypto_bytes));
  }
  return 0;
}
