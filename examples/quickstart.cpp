// Quickstart: bring up a two-site proxy grid, authenticate, and run an
// unmodified MPI application across both sites.
//
//   $ ./quickstart
//
// This walks the whole paper in ~80 lines: certificate authority, one proxy
// per site, GSSL tunnel between them, plaintext intra-site links, password
// login that yields a Kerberos-style session ticket, load-balanced
// scheduling, and MPI multiplexing through virtual slaves.
#include <cmath>
#include <cstdio>

#include "grid/grid.hpp"
#include "mpi/runtime.hpp"

using namespace pg;

int main() {
  // The MPI application. Note: plain MiniMPI code — nothing about proxies,
  // sites or security appears here. That is the paper's transparency claim.
  mpi::AppRegistry::instance().register_app(
      "compute-pi", [](mpi::Comm& comm) -> Status {
        constexpr std::uint64_t kIntervals = 1'000'000;
        double local = 0.0;
        for (std::uint64_t i = comm.rank(); i < kIntervals; i += comm.size()) {
          const double x = (i + 0.5) / kIntervals;
          local += 4.0 / (1.0 + x * x);
        }
        Result<double> pi =
            comm.allreduce(local / kIntervals, mpi::ReduceOp::kSum);
        if (!pi.is_ok()) return pi.status();
        if (comm.rank() == 0) {
          std::printf("  rank 0: pi = %.9f (error %.2e)\n", pi.value(),
                      std::fabs(pi.value() - M_PI));
        }
        return Status::ok();
      });

  // Two sites, two nodes each; one user allowed to run MPI jobs.
  grid::GridBuilder builder;
  builder.seed(7)
      .add_nodes("labA", 2, /*cpu_capacity=*/1.0)
      .add_nodes("labB", 2, /*cpu_capacity=*/2.0)
      .add_user("alice", "grid-pass", {"mpi.run", "status.query"});

  Result<std::unique_ptr<grid::Grid>> grid = builder.build();
  if (!grid.is_ok()) {
    std::fprintf(stderr, "grid build failed: %s\n",
                 grid.status().to_string().c_str());
    return 1;
  }
  std::printf("grid up: 2 sites, 4 nodes, 1 GSSL tunnel between proxies\n");

  // Login at alice's home site. The response is a sealed session ticket
  // that every later call presents (single authentication per session).
  Result<Bytes> token = grid.value()->login("labA", "alice", "grid-pass");
  if (!token.is_ok()) {
    std::fprintf(stderr, "login failed: %s\n",
                 token.status().to_string().c_str());
    return 1;
  }
  std::printf("alice logged in at labA, session ticket issued\n");

  // Run the app on 4 ranks; the load-balanced scheduler places them using
  // the status each proxy collects for its own site.
  std::printf("running compute-pi on 4 ranks...\n");
  const proxy::AppRunResult result = grid.value()->run_app(
      "labA", "alice", token.value(), "compute-pi", 4,
      grid::SchedulerPolicy::kLoadBalanced);
  if (!result.status.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status.to_string().c_str());
    return 1;
  }
  for (const auto& p : result.placements) {
    std::printf("  rank %u -> %s/%s\n", p.rank, p.site.c_str(),
                p.node.c_str());
  }

  // Where did the crypto work happen? Only between the sites.
  const grid::TrafficReport traffic = grid.value()->traffic_report();
  std::printf("traffic: inter-site %llu B (%llu B enciphered), "
              "intra-site %llu B (%llu B enciphered)\n",
              static_cast<unsigned long long>(traffic.inter_site.wire_bytes),
              static_cast<unsigned long long>(traffic.inter_site.crypto_bytes),
              static_cast<unsigned long long>(traffic.intra_site.wire_bytes),
              static_cast<unsigned long long>(traffic.intra_site.crypto_bytes));
  std::printf("done\n");
  return 0;
}
