// Two proxies over a real TCP socket — the deployment path.
//
// The Grid facade wires everything through in-process channels; this
// example instead builds the PKI and both proxies by hand and connects them
// across 127.0.0.1 TCP, proving the same middleware stack (GSSL handshake,
// control protocol, MPI multiplexing) runs on real sockets. In a real
// deployment the two halves would be separate processes on separate
// machines; the Channel abstraction is identical.
#include <cstdio>
#include <thread>

#include "mpi/runtime.hpp"
#include "net/memory_channel.hpp"
#include "net/tcp.hpp"
#include "proxy/node_agent.hpp"
#include "proxy/proxy_server.hpp"

using namespace pg;

namespace {

WallClock g_clock;

proxy::ProxyServerPtr make_proxy(crypto::CertificateAuthority& ca,
                                 const std::string& site,
                                 const Bytes& realm_key, Rng& rng) {
  const crypto::RsaKeyPair keys = crypto::rsa_generate(768, rng);
  const TimeMicros now = g_clock.now();
  proxy::ProxyConfig config;
  config.site = site;
  config.identity = tls::GsslIdentity{
      ca.issue("proxy." + site, keys.pub, now - kMicrosPerSecond,
               now + 3600 * kMicrosPerSecond),
      keys.priv};
  config.ca_name = ca.name();
  config.ca_key = ca.public_key();
  config.ticket_key = realm_key;
  config.clock = &g_clock;
  config.rng_seed = rng.next_u64();
  return std::make_unique<proxy::ProxyServer>(std::move(config));
}

Status wire_node(proxy::ProxyServer& proxy_server, const std::string& node,
                 proxy::NodeAgentPtr& agent_out) {
  net::ChannelPair pair = net::make_memory_channel_pair();
  Status attach_status;
  std::thread attacher([&] {
    attach_status = proxy_server.attach_node(node, std::move(pair.a));
  });
  proxy::NodeAgentConfig config;
  config.node_name = node;
  config.site = proxy_server.site();
  Result<proxy::NodeAgentPtr> agent =
      proxy::NodeAgent::create(std::move(config), std::move(pair.b));
  attacher.join();
  PG_RETURN_IF_ERROR(attach_status);
  if (!agent.is_ok()) return agent.status();
  agent_out = agent.take();
  return Status::ok();
}

}  // namespace

int main() {
  mpi::AppRegistry::instance().register_app(
      "sum-ranks", [](mpi::Comm& comm) -> Status {
        Result<double> total = comm.allreduce(
            static_cast<double>(comm.rank()), mpi::ReduceOp::kSum);
        if (!total.is_ok()) return total.status();
        const double n = comm.size();
        return total.value() == n * (n - 1) / 2
                   ? Status::ok()
                   : error(ErrorCode::kInternal, "wrong sum");
      });

  Rng rng(4711);
  crypto::CertificateAuthority ca("tcp-demo-ca", 768, rng);
  const Bytes realm_key = rng.next_bytes(32);

  proxy::ProxyServerPtr east = make_proxy(ca, "east", realm_key, rng);
  proxy::ProxyServerPtr west = make_proxy(ca, "west", realm_key, rng);

  // Real TCP between the proxies.
  Result<net::TcpListener> listener = net::TcpListener::bind(0);
  if (!listener.is_ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 listener.status().to_string().c_str());
    return 1;
  }
  const std::uint16_t port = listener.value().port();
  std::printf("proxy 'west' listening on 127.0.0.1:%u\n", port);

  Status accept_status;
  std::thread acceptor([&] {
    Result<net::ChannelPtr> conn = listener.value().accept();
    if (!conn.is_ok()) {
      accept_status = conn.status();
      return;
    }
    accept_status = west->connect_peer("east", conn.take(), false);
  });

  Result<net::ChannelPtr> conn = net::tcp_connect("127.0.0.1", port);
  if (!conn.is_ok()) {
    std::fprintf(stderr, "connect failed\n");
    acceptor.join();
    return 1;
  }
  const Status initiate_status = east->connect_peer("west", conn.take(), true);
  acceptor.join();
  if (!initiate_status.is_ok() || !accept_status.is_ok()) {
    std::fprintf(stderr, "peering failed: %s / %s\n",
                 initiate_status.to_string().c_str(),
                 accept_status.to_string().c_str());
    return 1;
  }
  std::printf("GSSL tunnel established over TCP (mutual certificates)\n");

  // Two nodes per site, plus stats sources for the scheduler.
  std::vector<proxy::NodeAgentPtr> agents(4);
  int agent_index = 0;
  for (proxy::ProxyServer* proxy_server : {east.get(), west.get()}) {
    for (const char* node : {"n0", "n1"}) {
      monitor::NodeProfile profile;
      profile.name = node;
      proxy_server->add_node_stats(
          std::make_unique<monitor::SyntheticStatsSource>(profile,
                                                          rng.next_u64()));
      const Status wired =
          wire_node(*proxy_server, node, agents[static_cast<std::size_t>(agent_index++)]);
      if (!wired.is_ok()) {
        std::fprintf(stderr, "node wiring failed: %s\n",
                     wired.to_string().c_str());
        return 1;
      }
    }
  }

  // A user at 'east' with rights to run MPI jobs.
  auth::UserAuthenticator& auth = east->authenticator();
  Rng pw_rng(1);
  auth.passwords().set_password("carol", "tcp-pass", pw_rng);
  auth.acl().grant_user("carol", "mpi.run");
  auth.acl().grant_user("carol", "status.query");

  proto::AuthRequest login;
  login.user = "carol";
  login.method = proto::AuthMethod::kPassword;
  login.credential = to_bytes("tcp-pass");
  const proto::AuthResponse session = east->login(login);
  if (!session.ok) {
    std::fprintf(stderr, "login failed: %s\n", session.reason.c_str());
    return 1;
  }
  std::printf("carol authenticated at east; ticket issued\n");

  // Run across both sites, over the TCP tunnel.
  sched::SchedulerPtr scheduler = sched::make_round_robin_scheduler();
  const proxy::AppRunResult result = east->run_app(
      "carol", session.token, "sum-ranks", 4, *scheduler);
  if (!result.status.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status.to_string().c_str());
    return 1;
  }
  std::printf("sum-ranks completed across sites:\n");
  for (const auto& p : result.placements) {
    std::printf("  rank %u -> %s/%s\n", p.rank, p.site.c_str(),
                p.node.c_str());
  }

  const proxy::ProxyMetrics metrics = east->metrics();
  std::printf("east routed %llu MPI messages to west over TCP+GSSL\n",
              static_cast<unsigned long long>(metrics.mpi_messages_remote));

  for (auto& agent : agents) agent->shutdown();
  east->shutdown();
  west->shutdown();
  std::printf("done\n");
  return 0;
}
