// Shared setup for the experiment benchmarks: registered applications with
// tunable parameters and grid construction helpers.
//
// Benches use 512-bit RSA so grid bring-up stays fast; the crypto bench
// (E1) covers larger key sizes explicitly.
#pragma once

#include <atomic>
#include <memory>

#include "grid/grid.hpp"
#include "mpi/datatypes.hpp"
#include "mpi/runtime.hpp"

namespace pgbench {

using namespace pg;

/// Tunables the registered applications read (set before each run; runs are
/// sequential within a bench binary).
struct AppParams {
  std::atomic<std::size_t> message_bytes{1024};
  std::atomic<int> iterations{16};
  /// Wall-clock duration of the app's measured section, written by rank 0.
  std::atomic<std::int64_t> measured_micros{0};
};

inline AppParams& app_params() {
  static AppParams params;
  return params;
}

/// Registers the benchmark applications once per process:
///   "stencil"  — halo exchange ring, message_bytes per halo, iterations
///   "pingpong" — rank 0 <-> rank 1 round trips, measured_micros output
///   "allreduce"— iterations of allreduce over doubles
///   "bcast"    — rank 0 broadcasts message_bytes to all, iterations times
///   "burn"     — barrier only
inline void register_bench_apps() {
  static const bool done = [] {
    auto& params = app_params();

    mpi::AppRegistry::instance().register_app(
        "stencil", [&params](mpi::Comm& comm) -> Status {
          const std::size_t bytes = params.message_bytes.load();
          const int iters = params.iterations.load();
          const Bytes halo(bytes, 0x42);
          const std::uint32_t left =
              (comm.rank() + comm.size() - 1) % comm.size();
          const std::uint32_t right = (comm.rank() + 1) % comm.size();
          for (int i = 0; i < iters; ++i) {
            PG_RETURN_IF_ERROR(comm.send(left, 1, halo));
            PG_RETURN_IF_ERROR(comm.send(right, 2, halo));
            Result<Bytes> a = comm.recv(static_cast<std::int32_t>(right), 1);
            if (!a.is_ok()) return a.status();
            Result<Bytes> b = comm.recv(static_cast<std::int32_t>(left), 2);
            if (!b.is_ok()) return b.status();
          }
          return Status::ok();
        });

    mpi::AppRegistry::instance().register_app(
        "pingpong", [&params](mpi::Comm& comm) -> Status {
          if (comm.size() < 2 || comm.rank() > 1) return Status::ok();
          const std::size_t bytes = params.message_bytes.load();
          const int iters = params.iterations.load();
          const Bytes payload(bytes, 0x17);
          WallClock wall;
          const TimeMicros start = wall.now();
          for (int i = 0; i < iters; ++i) {
            if (comm.rank() == 0) {
              PG_RETURN_IF_ERROR(comm.send(1, 5, payload));
              Result<Bytes> back = comm.recv(1, 5);
              if (!back.is_ok()) return back.status();
            } else {
              Result<Bytes> msg = comm.recv(0, 5);
              if (!msg.is_ok()) return msg.status();
              PG_RETURN_IF_ERROR(comm.send(0, 5, msg.value()));
            }
          }
          if (comm.rank() == 0) {
            params.measured_micros.store(wall.now() - start);
          }
          return Status::ok();
        });

    mpi::AppRegistry::instance().register_app(
        "allreduce", [&params](mpi::Comm& comm) -> Status {
          const int iters = params.iterations.load();
          for (int i = 0; i < iters; ++i) {
            Result<double> v = comm.allreduce(1.0, mpi::ReduceOp::kSum);
            if (!v.is_ok()) return v.status();
          }
          return Status::ok();
        });

    mpi::AppRegistry::instance().register_app(
        "bcast", [&params](mpi::Comm& comm) -> Status {
          const std::size_t bytes = params.message_bytes.load();
          const int iters = params.iterations.load();
          const Bytes payload(bytes, 0x7c);
          WallClock wall;
          const TimeMicros start = wall.now();
          for (int i = 0; i < iters; ++i) {
            Result<Bytes> got = comm.broadcast(0, payload);
            if (!got.is_ok()) return got.status();
            if (got.value().size() != bytes)
              return error(ErrorCode::kInternal, "bcast size mismatch");
          }
          if (comm.rank() == 0) {
            params.measured_micros.store(wall.now() - start);
          }
          return Status::ok();
        });

    mpi::AppRegistry::instance().register_app(
        "burn", [](mpi::Comm& comm) -> Status { return comm.barrier(); });
    return true;
  }();
  (void)done;
}

/// Builds a grid of `sites` x `nodes_per_site` with one privileged user
/// ("bench" / "pw").
inline std::unique_ptr<grid::Grid> make_bench_grid(
    std::size_t sites, std::size_t nodes_per_site,
    proxy::SecurityMode mode = proxy::SecurityMode::kProxyTunneling,
    std::uint64_t seed = 1) {
  register_bench_apps();
  grid::GridBuilder builder;
  builder.seed(seed).key_bits(512).security_mode(mode);
  for (std::size_t s = 0; s < sites; ++s) {
    builder.add_nodes("site" + std::to_string(s), nodes_per_site);
  }
  builder.add_user("bench", "pw", {"mpi.run", "status.query", "job.submit"});
  auto grid = builder.build();
  return grid.is_ok() ? grid.take() : nullptr;
}

inline Bytes bench_login(grid::Grid& grid, const std::string& site = "site0") {
  auto token = grid.login(site, "bench", "pw");
  return token.is_ok() ? token.take() : Bytes{};
}

}  // namespace pgbench
