// E5 — scheduling (§3): "In its original form, the MPI uses the
// round-robin method to distribute the processes among the nodes"; the
// proxy's load-balancing "ensures the best possible use and optimization of
// the available resources."
//
// Sweep heterogeneity (node speed ratio) and load factor (tasks per node);
// counters report the makespan under each policy and the improvement.
// Expected shape: identical on homogeneous grids, widening win for load
// balancing as heterogeneity grows.
#include <benchmark/benchmark.h>

#include "sched/makespan.hpp"
#include "sched/scheduler.hpp"
#include "sim/workload.hpp"

namespace {

using namespace pg;

void BM_SchedulingPolicy(benchmark::State& state) {
  const auto nodes_per_site = static_cast<std::size_t>(state.range(0));
  const double speed_ratio = static_cast<double>(state.range(1));
  const auto tasks_per_node = static_cast<std::uint32_t>(state.range(2));

  const auto nodes =
      sim::generate_uniform_grid(4, nodes_per_site, speed_ratio, 1234);
  const auto ranks =
      static_cast<std::uint32_t>(nodes.size() * tasks_per_node);

  auto rr = sched::make_round_robin_scheduler();
  auto lb = sched::make_load_balanced_scheduler();

  double rr_makespan = 0, lb_makespan = 0;
  for (auto _ : state) {
    const auto rr_placement = rr->assign(nodes, ranks, {});
    const auto lb_placement = lb->assign(nodes, ranks, {});
    if (!rr_placement.is_ok() || !lb_placement.is_ok()) {
      state.SkipWithError("assignment failed");
      return;
    }
    rr_makespan = sched::evaluate_makespan(nodes, rr_placement.value()).makespan;
    lb_makespan = sched::evaluate_makespan(nodes, lb_placement.value()).makespan;
    benchmark::DoNotOptimize(rr_makespan);
    benchmark::DoNotOptimize(lb_makespan);
  }
  state.counters["rr_makespan"] = rr_makespan;
  state.counters["lb_makespan"] = lb_makespan;
  state.counters["lb_win_pct"] =
      rr_makespan > 0 ? 100.0 * (rr_makespan - lb_makespan) / rr_makespan : 0;
}

// args: nodes_per_site, speed_ratio, tasks_per_node
BENCHMARK(BM_SchedulingPolicy)
    ->Args({4, 1, 2})
    ->Args({4, 2, 2})
    ->Args({4, 3, 2})
    ->Args({4, 4, 2})
    ->Args({8, 4, 1})
    ->Args({8, 4, 4})
    ->Args({16, 4, 2});

// Weighted (non-uniform) task costs: list scheduling still wins.
void BM_SchedulingWeightedTasks(benchmark::State& state) {
  const double spread = static_cast<double>(state.range(0));
  const auto nodes = sim::generate_uniform_grid(4, 4, 3.0, 99);
  const auto costs =
      sim::generate_task_costs(nodes.size() * 3, 1.0, spread, 4);
  const auto ranks = static_cast<std::uint32_t>(costs.size());

  auto rr = sched::make_round_robin_scheduler();
  auto lb = sched::make_load_balanced_scheduler();

  double rr_makespan = 0, lb_makespan = 0;
  for (auto _ : state) {
    const auto rr_placement = rr->assign(nodes, ranks, {});
    const auto lb_placement = lb->assign(nodes, ranks, {});
    if (!rr_placement.is_ok() || !lb_placement.is_ok()) {
      state.SkipWithError("assignment failed");
      return;
    }
    rr_makespan = sched::evaluate_makespan_weighted(nodes,
                                                    rr_placement.value(), costs)
                      .makespan;
    lb_makespan = sched::evaluate_makespan_weighted(nodes,
                                                    lb_placement.value(), costs)
                      .makespan;
  }
  state.counters["rr_makespan"] = rr_makespan;
  state.counters["lb_makespan"] = lb_makespan;
  state.counters["lb_win_pct"] =
      rr_makespan > 0 ? 100.0 * (rr_makespan - lb_makespan) / rr_makespan : 0;
}
BENCHMARK(BM_SchedulingWeightedTasks)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Scheduler decision cost itself (must stay negligible vs job runtimes).
void BM_SchedulerDecisionCost(benchmark::State& state) {
  const auto node_count = static_cast<std::size_t>(state.range(0));
  const auto nodes = sim::generate_uniform_grid(8, node_count / 8, 4.0, 5);
  const auto ranks = static_cast<std::uint32_t>(nodes.size() * 2);
  auto lb = sched::make_load_balanced_scheduler();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lb->assign(nodes, ranks, {}));
  }
}
BENCHMARK(BM_SchedulerDecisionCost)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
