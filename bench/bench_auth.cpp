// E6 — authentication evolution (§3): the paper plans to move from
// per-request digital signatures to Kerberos-style tickets: "a single
// authentication per session, with the access rights stored safely in a
// ticket and reused transparently."
//
// Benchmarked: the primitive costs (password verify, signature verify,
// ticket authorize) and the end-to-end session cost for M requests under
// each scheme. Expected shape: per-request RSA verification ≫ per-request
// ticket HMAC, so the ticket scheme's advantage grows linearly with M.
#include <benchmark/benchmark.h>

#include "auth/authenticator.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "crypto/rsa.hpp"

namespace {

using namespace pg;
using namespace pg::auth;

struct AuthEnv {
  Rng rng{2024};
  crypto::RsaKeyPair user_keys;
  UserAuthenticator authenticator;
  ManualClock clock{1'000'000};

  AuthEnv()
      : user_keys(crypto::rsa_generate(768, rng)),
        authenticator("siteA", Rng(1).next_bytes(32),
                      3600 * kMicrosPerSecond) {
    Rng pw_rng(2);
    authenticator.passwords().set_password("alice", "pw", pw_rng);
    authenticator.signatures().register_user_key("alice", user_keys.pub);
    authenticator.acl().grant_user("alice", "mpi.run");
  }
};

AuthEnv& env() {
  static AuthEnv e;
  return e;
}

void BM_PasswordVerify(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env().authenticator.passwords().verify("alice", "pw"));
  }
}
BENCHMARK(BM_PasswordVerify);

void BM_SignatureAuth(benchmark::State& state) {
  // Fresh timestamp per iteration (the replay cache rejects reuse) — this
  // includes the client-side signing cost, as a per-request scheme would.
  static TimeMicros ts = 1'000'000;
  auto& authenticator = env().authenticator;
  for (auto _ : state) {
    ts += 1000;
    const Bytes credential =
        make_signature_credential("alice", "siteA", ts, env().user_keys.priv);
    benchmark::DoNotOptimize(
        authenticator.signatures().verify("alice", ts, credential, ts));
  }
}
BENCHMARK(BM_SignatureAuth)->Unit(benchmark::kMicrosecond);

void BM_SignatureVerifyOnly(benchmark::State& state) {
  // Server-side cost alone.
  const TimeMicros ts = 5'000'000;
  const Bytes credential =
      make_signature_credential("alice", "siteA", ts, env().user_keys.priv);
  // Bypass the replay cache by verifying the raw signature.
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify(
        env().user_keys.pub, signature_challenge("alice", "siteA", ts),
        credential));
  }
}
BENCHMARK(BM_SignatureVerifyOnly)->Unit(benchmark::kMicrosecond);

void BM_TicketAuthorize(benchmark::State& state) {
  auto& tickets = env().authenticator.tickets();
  const Bytes token = tickets.issue_sealed("alice", {"mpi.run"}, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tickets.authorize(token, "mpi.run", 2000));
  }
}
BENCHMARK(BM_TicketAuthorize)->Unit(benchmark::kMicrosecond);

// End-to-end session: M authorized requests under each scheme.
void BM_SessionSignaturePerRequest(benchmark::State& state) {
  const int requests = static_cast<int>(state.range(0));
  auto& authenticator = env().authenticator;
  static TimeMicros ts = 100'000'000;
  for (auto _ : state) {
    for (int i = 0; i < requests; ++i) {
      ts += 1000;
      const Bytes credential = make_signature_credential(
          "alice", "siteA", ts, env().user_keys.priv);
      if (!authenticator.signatures()
               .verify("alice", ts, credential, ts)
               .is_ok()) {
        state.SkipWithError("signature rejected");
        return;
      }
      // ACL check accompanies each request.
      benchmark::DoNotOptimize(
          authenticator.acl().check("alice", "mpi.run"));
    }
  }
  state.SetItemsProcessed(state.iterations() * requests);
}
BENCHMARK(BM_SessionSignaturePerRequest)
    ->Arg(1)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

void BM_SessionTicket(benchmark::State& state) {
  const int requests = static_cast<int>(state.range(0));
  auto& authenticator = env().authenticator;
  static TimeMicros ts = 200'000'000;
  for (auto _ : state) {
    // One signature login, then M ticket authorizations.
    ts += 1000;
    proto::AuthRequest login;
    login.user = "alice";
    login.method = proto::AuthMethod::kSignature;
    login.timestamp = static_cast<std::uint64_t>(ts);
    login.credential =
        make_signature_credential("alice", "siteA", ts, env().user_keys.priv);
    const proto::AuthResponse session = authenticator.authenticate(login, ts);
    if (!session.ok) {
      state.SkipWithError("login failed");
      return;
    }
    for (int i = 0; i < requests; ++i) {
      if (!authenticator.authorize(session.token, "mpi.run", ts).is_ok()) {
        state.SkipWithError("ticket rejected");
        return;
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * requests);
}
BENCHMARK(BM_SessionTicket)
    ->Arg(1)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
