// E-record — sealed-record throughput of the GSSL record pipeline.
//
// Measures the inter-proxy hot path at three altitudes:
//   * BM_SealedRecord — producing one wire-ready sealed record (cipher +
//     MAC + framing) from a plaintext payload, steady state.
//   * BM_OpenRecord   — verifying + decrypting one sealed record.
//   * BM_SessionPipe  — full GsslSession send/recv over a memory channel.
//
// The committed before/after numbers live in bench/results/bench_record.json;
// the CI bench smoke job compares a fresh run against the committed baseline.
#include <benchmark/benchmark.h>

#include <future>

#include "common/rng.hpp"
#include "crypto/cert.hpp"
#include "crypto/rsa.hpp"
#include "net/memory_channel.hpp"
#include "tls/gssl.hpp"
#include "tls/record.hpp"

namespace {

using namespace pg;
using tls::internal::RecordCipher;
using tls::internal::RecordType;

struct CipherEnv {
  Bytes key, mac, iv;
  CipherEnv() {
    Rng rng(21);
    key = rng.next_bytes(32);
    mac = rng.next_bytes(32);
    iv = rng.next_bytes(12);
  }
  RecordCipher make() const { return RecordCipher(key, mac, iv); }
};

CipherEnv& cipher_env() {
  static CipherEnv env;
  return env;
}

// Steady-state production of one wire-ready sealed record into a warm
// reused buffer — the exact shape of GsslSession::send.
void BM_SealedRecord(benchmark::State& state) {
  RecordCipher tx = cipher_env().make();
  Rng rng(22);
  const Bytes payload = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  Bytes wire;
  for (auto _ : state) {
    if (!tx.seal_record(RecordType::kData, payload, wire).is_ok()) {
      state.SkipWithError("seal failed");
      return;
    }
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SealedRecord)
    ->Arg(64)
    ->Arg(4 * 1024)
    ->Arg(64 * 1024)
    ->Arg(1024 * 1024);

// Verify + decrypt of a sealed record (seal happens in-loop so the
// sequence numbers stay matched; subtract BM_SealedRecord to isolate).
void BM_SealOpenRecord(benchmark::State& state) {
  RecordCipher tx = cipher_env().make();
  RecordCipher rx = cipher_env().make();
  Rng rng(23);
  const Bytes payload = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes sealed = tx.seal(RecordType::kData, payload);
    Result<Bytes> opened = rx.open(RecordType::kData, sealed);
    if (!opened.is_ok()) {
      state.SkipWithError("open failed");
      return;
    }
    benchmark::DoNotOptimize(opened.value().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SealOpenRecord)
    ->Arg(64)
    ->Arg(4 * 1024)
    ->Arg(64 * 1024)
    ->Arg(1024 * 1024);

// Full session path: seal + record framing + channel write + read + open.
void BM_SessionPipe(benchmark::State& state) {
  Rng rng(24);
  crypto::CertificateAuthority ca("bench-ca", 512, rng);
  const crypto::RsaKeyPair a_keys = crypto::rsa_generate(512, rng);
  const crypto::RsaKeyPair b_keys = crypto::rsa_generate(512, rng);
  ManualClock clock(1000);
  const tls::GsslConfig a_cfg{
      {ca.issue("a", a_keys.pub, 0, 1'000'000'000), a_keys.priv},
      ca.name(), ca.public_key(), ""};
  const tls::GsslConfig b_cfg{
      {ca.issue("b", b_keys.pub, 0, 1'000'000'000), b_keys.priv},
      ca.name(), ca.public_key(), ""};

  net::ChannelPair pair = net::make_memory_channel_pair();
  Rng a_rng(1), b_rng(2);
  auto server = std::async(std::launch::async, [&] {
    return tls::gssl_server_handshake(*pair.b, b_cfg, clock, b_rng);
  });
  auto client = tls::gssl_client_handshake(*pair.a, a_cfg, clock, a_rng);
  auto server_session = server.get();
  if (!client.is_ok() || !server_session.is_ok()) {
    state.SkipWithError("handshake failed");
    return;
  }

  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    if (!client.value()->send(payload).is_ok()) {
      state.SkipWithError("send failed");
      return;
    }
    auto received = server_session.value()->recv();
    if (!received.is_ok()) {
      state.SkipWithError("recv failed");
      return;
    }
    benchmark::DoNotOptimize(received.value().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SessionPipe)
    ->Arg(64)
    ->Arg(4 * 1024)
    ->Arg(64 * 1024)
    ->Arg(1024 * 1024);

}  // namespace

BENCHMARK_MAIN();
