// E3 — paper Figure 3(a) vs 3(b): plain local MPI communication vs the
// proxy-multiplexed path.
//
// Three deployments run the same ping-pong application:
//   local   — ranks share a LocalFabric (Figure 3a: no middleware)
//   1-site  — ranks on two nodes of one site (node->proxy->node, plaintext)
//   2-site  — ranks on two sites (node->proxy->GSSL tunnel->proxy->node)
// Counters report per-round-trip latency and effective bandwidth per
// message size. The expected shape: a fixed per-hop cost for proxying and
// a crypto cost only on the inter-site path; unmodified app code in all
// three.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace pgbench;

void set_counters(benchmark::State& state, std::size_t bytes, int iters) {
  const double micros =
      static_cast<double>(app_params().measured_micros.load());
  const double per_roundtrip = micros / iters;
  state.counters["us_per_roundtrip"] = per_roundtrip;
  // Each round trip moves the payload twice.
  state.counters["MB_per_s"] =
      per_roundtrip > 0
          ? (2.0 * static_cast<double>(bytes)) / per_roundtrip
          : 0;
}

void BM_PingPongLocal(benchmark::State& state) {
  register_bench_apps();
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const int iters = 64;
  app_params().message_bytes.store(bytes);
  app_params().iterations.store(iters);

  for (auto _ : state) {
    const auto fn = mpi::AppRegistry::instance().lookup("pingpong");
    const mpi::RunReport report = mpi::run_local(fn.value(), 2);
    if (!report.status.is_ok()) {
      state.SkipWithError("local run failed");
      return;
    }
  }
  set_counters(state, bytes, iters);
}
BENCHMARK(BM_PingPongLocal)
    ->Arg(64)->Arg(1024)->Arg(16 * 1024)->Arg(256 * 1024)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void run_grid_pingpong(benchmark::State& state, std::size_t sites,
                       std::size_t nodes_per_site) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const int iters = 64;
  app_params().message_bytes.store(bytes);
  app_params().iterations.store(iters);

  for (auto _ : state) {
    auto grid = make_bench_grid(sites, nodes_per_site);
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    const Bytes token = bench_login(*grid);
    // Round-robin over the sorted node list puts rank 0 and rank 1 on
    // different nodes (and different sites when sites > 1).
    const auto result = grid->run_app("site0", "bench", token, "pingpong", 2,
                                      grid::SchedulerPolicy::kRoundRobin);
    if (!result.status.is_ok()) {
      state.SkipWithError(result.status.to_string().c_str());
      return;
    }
    const grid::TrafficReport traffic = grid->traffic_report();
    state.counters["crypto_bytes"] = static_cast<double>(
        traffic.inter_site.crypto_bytes + traffic.intra_site.crypto_bytes);
    grid->shutdown();
  }
  set_counters(state, bytes, iters);
}

void BM_PingPongOneSite(benchmark::State& state) {
  run_grid_pingpong(state, 1, 2);
}
BENCHMARK(BM_PingPongOneSite)
    ->Arg(64)->Arg(1024)->Arg(16 * 1024)->Arg(256 * 1024)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_PingPongTwoSites(benchmark::State& state) {
  run_grid_pingpong(state, 2, 1);
}
BENCHMARK(BM_PingPongTwoSites)
    ->Arg(64)->Arg(1024)->Arg(16 * 1024)->Arg(256 * 1024)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// Collective performance through the proxy: allreduce across deployments.
void BM_AllreduceLocal(benchmark::State& state) {
  register_bench_apps();
  app_params().iterations.store(32);
  const auto ranks = static_cast<std::uint32_t>(state.range(0));
  WallClock wall;
  for (auto _ : state) {
    const auto fn = mpi::AppRegistry::instance().lookup("allreduce");
    const TimeMicros start = wall.now();
    const mpi::RunReport report = mpi::run_local(fn.value(), ranks);
    if (!report.status.is_ok()) {
      state.SkipWithError("local allreduce failed");
      return;
    }
    state.counters["us_per_allreduce"] =
        static_cast<double>(wall.now() - start) / 32.0;
  }
}
BENCHMARK(BM_AllreduceLocal)->Arg(4)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Sum of data-plane envelopes the proxies routed (local node forwards +
// inter-site sends) — the quantity the batching fast path shrinks.
double proxy_messages_routed(grid::Grid& grid) {
  double routed = 0;
  for (const auto& site : grid.sites()) {
    const proxy::ProxyMetrics m = grid.proxy(site).metrics();
    routed += static_cast<double>(m.mpi_messages_local + m.mpi_messages_remote);
  }
  return routed;
}

void BM_AllreduceTwoSites(benchmark::State& state) {
  const auto ranks = static_cast<std::uint32_t>(state.range(0));
  app_params().iterations.store(32);
  WallClock wall;
  for (auto _ : state) {
    auto grid = make_bench_grid(2, ranks / 2);
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    const Bytes token = bench_login(*grid);
    const TimeMicros start = wall.now();
    const auto result = grid->run_app("site0", "bench", token, "allreduce",
                                      ranks, grid::SchedulerPolicy::kRoundRobin);
    if (!result.status.is_ok()) {
      state.SkipWithError(result.status.to_string().c_str());
      return;
    }
    state.counters["us_per_allreduce"] =
        static_cast<double>(wall.now() - start) / 32.0;
    state.counters["messages_routed"] = proxy_messages_routed(*grid);
    const grid::TrafficReport traffic = grid->traffic_report();
    state.counters["crypto_bytes"] =
        static_cast<double>(traffic.inter_site.crypto_bytes);
    grid->shutdown();
  }
}
BENCHMARK(BM_AllreduceTwoSites)->Arg(4)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Cross-site broadcast fan-out: 16 ranks over 2 sites x 4 nodes. The
// site-aware fast path ships ONE payload per destination site per bcast;
// messages_routed / crypto_bytes make the multiplexing visible.
void BM_BcastTwoSites(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const std::uint32_t ranks = 16;
  const int iters = 16;
  app_params().message_bytes.store(bytes);
  app_params().iterations.store(iters);
  for (auto _ : state) {
    auto grid = make_bench_grid(2, 4);
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    const Bytes token = bench_login(*grid);
    const auto result = grid->run_app("site0", "bench", token, "bcast", ranks,
                                      grid::SchedulerPolicy::kRoundRobin);
    if (!result.status.is_ok()) {
      state.SkipWithError(result.status.to_string().c_str());
      return;
    }
    const double micros =
        static_cast<double>(app_params().measured_micros.load());
    state.counters["us_per_bcast"] = micros / iters;
    state.counters["MB_per_s"] =
        micros > 0 ? static_cast<double>(bytes) * ranks * iters / micros : 0;
    state.counters["messages_routed"] = proxy_messages_routed(*grid);
    const grid::TrafficReport traffic = grid->traffic_report();
    state.counters["crypto_bytes"] =
        static_cast<double>(traffic.inter_site.crypto_bytes);
    grid->shutdown();
  }
}
BENCHMARK(BM_BcastTwoSites)->Arg(64)->Arg(1024)->Arg(4096)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
