// E7 — failure containment (§3): "This distributed control reduces the
// effect of failures on a given site or proxy."
//
// A proxy is killed in a 4-site grid. Under the paper's distributed
// control, the surviving sites keep answering status queries and running
// applications; only the failed site is lost. Under a centralized-control
// baseline (all state flows through one coordinator), killing the
// coordinator takes grid-wide control down with it.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace pgbench;

constexpr std::size_t kSites = 4;

void BM_FailureDistributedControl(benchmark::State& state) {
  for (auto _ : state) {
    auto grid = make_bench_grid(kSites, 2);
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    const Bytes token = bench_login(*grid);

    const auto before = grid->status("site0", token, {});
    state.counters["sites_before"] =
        before.is_ok() ? static_cast<double>(before.value().size()) : 0;

    // Kill a NON-coordinator site; measure what survives from site0.
    grid->kill_proxy("site2");

    WallClock wall;
    const TimeMicros start = wall.now();
    const auto after = grid->status("site0", token, {});
    state.counters["status_after_kill_ms"] =
        static_cast<double>(wall.now() - start) / 1000.0;
    state.counters["sites_after"] =
        after.is_ok() ? static_cast<double>(after.value().size()) : 0;

    // Applications still run on the survivors.
    const auto run = grid->run_app("site0", "bench", token, "burn", 4,
                                   grid::SchedulerPolicy::kLoadBalanced);
    state.counters["app_runs_after_kill"] = run.status.is_ok() ? 1 : 0;
    bool avoided_dead_site = true;
    for (const auto& p : run.placements) {
      if (p.site == "site2") avoided_dead_site = false;
    }
    state.counters["placements_avoid_dead_site"] = avoided_dead_site ? 1 : 0;
    grid->shutdown();
  }
}
BENCHMARK(BM_FailureDistributedControl)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_FailureCentralizedControl(benchmark::State& state) {
  for (auto _ : state) {
    auto grid = make_bench_grid(kSites, 2);
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    const Bytes token = bench_login(*grid);

    // Centralized baseline: site0 is the coordinator; every other site
    // learns about the grid only through it (queries route via site0).
    const auto before = grid->status("site1", token, {"site0"});
    state.counters["coordinator_reachable_before"] =
        before.is_ok() && !before.value().empty() ? 1 : 0;

    // The coordinator dies.
    grid->kill_proxy("site0");

    // Now site1 cannot learn ANYTHING beyond itself through the
    // coordinator — global control is gone even though 3 of 4 sites and
    // all their nodes are healthy.
    const auto through_coordinator =
        grid->status("site1", token, {"site0"});
    const double via_coordinator =
        through_coordinator.is_ok()
            ? static_cast<double>(through_coordinator.value().size())
            : 0;
    state.counters["sites_via_dead_coordinator"] = via_coordinator;

    // For contrast: the same survivors answer fine when asked directly
    // (which a centralized design would not do).
    const auto direct = grid->status("site1", token, {});
    state.counters["sites_direct_after"] =
        direct.is_ok() ? static_cast<double>(direct.value().size()) : 0;
    grid->shutdown();
  }
}
BENCHMARK(BM_FailureCentralizedControl)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_FailureNodeLoss(benchmark::State& state) {
  // A single node dying mid-grid: the proxy stops advertising it (its link
  // is down), so subsequent jobs schedule around it transparently.
  for (auto _ : state) {
    auto grid = make_bench_grid(2, 2);
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    const Bytes token = bench_login(*grid);

    grid->kill_node("site1", "node1");

    WallClock wall;
    const TimeMicros start = wall.now();
    const auto run = grid->run_app("site0", "bench", token, "burn", 4,
                                   grid::SchedulerPolicy::kRoundRobin);
    state.counters["job_succeeds_after_node_loss"] =
        run.status.is_ok() ? 1 : 0;
    state.counters["reschedule_ms"] =
        static_cast<double>(wall.now() - start) / 1000.0;
    bool avoided = true;
    for (const auto& p : run.placements) {
      if (p.site == "site1" && p.node == "node1") avoided = false;
    }
    state.counters["placements_avoid_dead_node"] = avoided ? 1 : 0;

    // The status view reflects the loss: 3 nodes remain visible.
    const auto reports = grid->status("site0", token, {});
    std::size_t visible = 0;
    if (reports.is_ok()) {
      for (const auto& r : reports.value()) visible += r.nodes.size();
    }
    state.counters["nodes_visible"] = static_cast<double>(visible);
    grid->shutdown();
  }
}
BENCHMARK(BM_FailureNodeLoss)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
