// E12 — event-driven proxy core at scale (ISSUE 7 tentpole proof).
//
// Holds 10k+ concurrent connections open against the process-global reactor
// and measures request latency through a hot subset while the rest idle.
// Under the old thread-per-connection reader model this fleet would need
// 20k+ reader threads; the reactor holds it on a bounded set (io threads +
// workers + transient strand drainers), which the `threads` counter proves.
//
// The fleet mixes real TCP sockets (epoll edge-triggered path, capped by
// RLIMIT_NOFILE) with in-process memory channels (the fd-less readiness
// shim) so both reactor paths carry load.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "net/memory_channel.hpp"
#include "net/reactor.hpp"
#include "net/tcp.hpp"
#include "proxy/connection.hpp"
#include "tls/link.hpp"

namespace {

using namespace pg;

/// Live threads in this process, from /proc/self/status. The headline
/// number: ~10k connections must NOT mean ~10k threads.
long thread_count() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0)
      return std::strtol(line.c_str() + 8, nullptr, 10);
  }
  return -1;
}

/// How many TCP connection pairs the fd budget allows (2 fds per pair,
/// generous headroom for the process's other fds).
std::size_t tcp_budget() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &lim);
    (void)getrlimit(RLIMIT_NOFILE, &lim);
  }
  if (lim.rlim_cur < 2048) return 0;
  return std::min<std::size_t>(3000, (lim.rlim_cur - 2048) / 2);
}

struct ConnPairHolder {
  proxy::ConnectionPtr a;  // calling end
  proxy::ConnectionPtr b;  // echo end
};

ConnPairHolder make_conn_pair(net::ChannelPtr chan_a, net::ChannelPtr chan_b) {
  auto link_a = tls::make_plain_link(*chan_a);
  auto link_b = tls::make_plain_link(*chan_b);
  ConnPairHolder out;
  out.a = std::make_unique<proxy::Connection>(
      "echo", std::move(chan_a), std::move(link_a), true,
      [](const proto::Envelope&, proxy::Connection&) {});
  out.b = std::make_unique<proxy::Connection>(
      "caller", std::move(chan_b), std::move(link_b), false,
      [](const proto::Envelope& env, proxy::Connection& conn) {
        if (env.op == proto::OpCode::kPing)
          (void)conn.respond(env, proto::OpCode::kPong, env.payload);
      });
  out.a->start();
  out.b->start();
  return out;
}

/// The held-open fleet. Built once and leaked: teardown is not what this
/// bench measures, and the global reactor outlives statics anyway.
struct Fleet {
  std::vector<ConnPairHolder> pairs;
  std::size_t tcp_pairs = 0;

  explicit Fleet(std::size_t total) {
    pairs.reserve(total);
    const std::size_t tcp_target = std::min(total, tcp_budget());
    if (tcp_target > 0) {
      auto listener = net::TcpListener::bind(0);
      if (listener.is_ok()) {
        for (std::size_t i = 0; i < tcp_target; ++i) {
          auto client =
              net::tcp_connect("127.0.0.1", listener.value().port());
          if (!client.is_ok()) break;
          auto accepted = listener.value().accept();
          if (!accepted.is_ok()) break;
          pairs.push_back(make_conn_pair(client.take(), accepted.take()));
        }
      }
      tcp_pairs = pairs.size();
    }
    while (pairs.size() < total) {
      net::ChannelPair chans = net::make_memory_channel_pair();
      pairs.push_back(make_conn_pair(std::move(chans.a), std::move(chans.b)));
    }
  }
};

Fleet& fleet_of(std::size_t total) {
  static auto* fleets = new std::vector<std::unique_ptr<Fleet>>();
  for (auto& f : *fleets) {
    if (f->pairs.size() == total) return *f;
  }
  fleets->push_back(std::make_unique<Fleet>(total));
  return *fleets->back();
}

/// Request latency through a hot subset while `total - hot` connections sit
/// idle on the same reactor. Idle connections must be nearly free.
void BM_PingWithConcurrentConnections(benchmark::State& state) {
  const std::size_t total = static_cast<std::size_t>(state.range(0));
  Fleet& fleet = fleet_of(total);
  // Hot subset straddles the TCP/memory boundary so both paths are hit.
  const std::size_t hot = std::min<std::size_t>(64, fleet.pairs.size());
  const std::size_t stride = fleet.pairs.size() / hot;
  const Bytes payload = to_bytes(std::string(256, 'q'));

  std::size_t i = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    ConnPairHolder& pair = fleet.pairs[(i % hot) * stride];
    Result<proto::Envelope> response =
        pair.a->call(proto::OpCode::kPing, payload, 10 * kMicrosPerSecond);
    if (!response.is_ok()) {
      state.SkipWithError(response.status().to_string().c_str());
      break;
    }
    bytes += payload.size() + response.value().payload.size();
    ++i;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.counters["connections"] =
      static_cast<double>(fleet.pairs.size() * 2);  // both ends registered
  state.counters["tcp_connections"] = static_cast<double>(fleet.tcp_pairs * 2);
  state.counters["threads"] = static_cast<double>(thread_count());
  state.counters["reactor_io_threads"] =
      static_cast<double>(net::Reactor::global().io_thread_count());
}
BENCHMARK(BM_PingWithConcurrentConnections)
    ->Arg(100)
    ->Arg(5000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

/// Connection lifecycle rate: open (reactor registration), one round trip,
/// close (strand quiesce + reactor detach). The churn path CI's sanitizer
/// matrix also hammers.
void BM_ConnectionChurn(benchmark::State& state) {
  const Bytes payload = to_bytes("churn");
  std::uint64_t ok = 0;
  for (auto _ : state) {
    net::ChannelPair chans = net::make_memory_channel_pair();
    ConnPairHolder pair =
        make_conn_pair(std::move(chans.a), std::move(chans.b));
    Result<proto::Envelope> response =
        pair.a->call(proto::OpCode::kPing, payload, 10 * kMicrosPerSecond);
    if (!response.is_ok()) {
      state.SkipWithError(response.status().to_string().c_str());
      break;
    }
    ++ok;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ok));
}
BENCHMARK(BM_ConnectionChurn)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
