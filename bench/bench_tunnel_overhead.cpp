// E2 — the paper's central overhead claim (§3): with edge tunneling "the
// information will be tunneled only among cluster edges and not inside
// them", so security work grows with the number of SITES; with the
// Globus-like per-node approach "all the cluster's nodes reflect the
// overhead", growing with the number of NODES.
//
// Sweep: sites x nodes-per-site, same halo-exchange application, both
// deployment modes. Counters report enciphered bytes, handshakes, wire
// bytes, and modelled transfer times (sim::LinkProfile). The link era is
// a sweep axis too: 0 prices the traffic on the paper's 2003 testbed
// (10 Mbit WAN / 100 Mbit LAN), 1 on modern links (trans-oceanic WAN /
// datacenter LAN) — the relative tunneling savings survive the upgrade
// even though absolute times collapse.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/network_model.hpp"

namespace {

using namespace pgbench;

void BM_TunnelOverhead(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  const auto nodes = static_cast<std::size_t>(state.range(1));
  const auto mode = state.range(2) == 0
                        ? proxy::SecurityMode::kProxyTunneling
                        : proxy::SecurityMode::kPerNodeSecurity;
  const char* inter_name = state.range(3) == 0 ? "wan" : "intercontinental";
  const char* intra_name = state.range(3) == 0 ? "lan" : "datacenter";
  const sim::LinkProfile inter_link = *sim::link_profile_by_name(inter_name);
  const sim::LinkProfile intra_link = *sim::link_profile_by_name(intra_name);
  const auto ranks = static_cast<std::uint32_t>(sites * nodes);

  app_params().message_bytes.store(2048);
  app_params().iterations.store(8);

  for (auto _ : state) {
    auto grid = make_bench_grid(sites, nodes, mode);
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    const Bytes token = bench_login(*grid);

    const auto result =
        grid->run_app("site0", "bench", token, "stencil", ranks,
                      grid::SchedulerPolicy::kRoundRobin);
    if (!result.status.is_ok()) {
      state.SkipWithError(result.status.to_string().c_str());
      return;
    }

    const grid::TrafficReport traffic = grid->traffic_report();
    state.counters["crypto_bytes"] = static_cast<double>(
        traffic.inter_site.crypto_bytes + traffic.intra_site.crypto_bytes);
    state.counters["intersite_bytes"] =
        static_cast<double>(traffic.inter_site.wire_bytes);
    state.counters["intrasite_bytes"] =
        static_cast<double>(traffic.intra_site.wire_bytes);
    state.counters["handshakes"] = static_cast<double>(traffic.handshakes);
    state.counters["handshake_bytes"] = static_cast<double>(
        traffic.inter_site.handshake_bytes +
        traffic.intra_site.handshake_bytes);

    // Modelled inter/intra-site time on the selected link era.
    sim::TrafficSummary wan;
    wan.messages = traffic.inter_site.messages;
    wan.bytes = traffic.inter_site.wire_bytes;
    wan.crypto_bytes = traffic.inter_site.crypto_bytes;
    sim::TrafficSummary lan;
    lan.messages = traffic.intra_site.messages;
    lan.bytes = traffic.intra_site.wire_bytes;
    lan.crypto_bytes = traffic.intra_site.crypto_bytes;
    state.counters["modelled_ms"] = static_cast<double>(
        sim::modelled_time(wan, inter_link) +
        sim::modelled_time(lan, intra_link)) / 1000.0;

    grid->shutdown();
  }
}

}  // namespace

// args: sites, nodes_per_site, mode (0 = proxy tunneling, 1 = per-node),
//       link era (0 = 2003 wan/lan, 1 = modern intercontinental/datacenter)
BENCHMARK(BM_TunnelOverhead)
    ->Args({2, 2, 0, 0})->Args({2, 2, 1, 0})
    ->Args({2, 8, 0, 0})->Args({2, 8, 1, 0})
    ->Args({4, 4, 0, 0})->Args({4, 4, 1, 0})
    ->Args({4, 8, 0, 0})->Args({4, 8, 1, 0})
    ->Args({8, 2, 0, 0})->Args({8, 2, 1, 0})
    ->Args({4, 4, 0, 1})->Args({4, 4, 1, 1})
    ->Args({4, 8, 0, 1})->Args({4, 8, 1, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
