// E2 — the paper's central overhead claim (§3): with edge tunneling "the
// information will be tunneled only among cluster edges and not inside
// them", so security work grows with the number of SITES; with the
// Globus-like per-node approach "all the cluster's nodes reflect the
// overhead", growing with the number of NODES.
//
// Sweep: sites x nodes-per-site, same halo-exchange application, both
// deployment modes. Counters report enciphered bytes, handshakes, wire
// bytes, and modelled 2003-era transfer times (sim::LinkProfile).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/network_model.hpp"

namespace {

using namespace pgbench;

void BM_TunnelOverhead(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  const auto nodes = static_cast<std::size_t>(state.range(1));
  const auto mode = state.range(2) == 0
                        ? proxy::SecurityMode::kProxyTunneling
                        : proxy::SecurityMode::kPerNodeSecurity;
  const auto ranks = static_cast<std::uint32_t>(sites * nodes);

  app_params().message_bytes.store(2048);
  app_params().iterations.store(8);

  for (auto _ : state) {
    auto grid = make_bench_grid(sites, nodes, mode);
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    const Bytes token = bench_login(*grid);

    const auto result =
        grid->run_app("site0", "bench", token, "stencil", ranks,
                      grid::SchedulerPolicy::kRoundRobin);
    if (!result.status.is_ok()) {
      state.SkipWithError(result.status.to_string().c_str());
      return;
    }

    const grid::TrafficReport traffic = grid->traffic_report();
    state.counters["crypto_bytes"] = static_cast<double>(
        traffic.inter_site.crypto_bytes + traffic.intra_site.crypto_bytes);
    state.counters["intersite_bytes"] =
        static_cast<double>(traffic.inter_site.wire_bytes);
    state.counters["intrasite_bytes"] =
        static_cast<double>(traffic.intra_site.wire_bytes);
    state.counters["handshakes"] = static_cast<double>(traffic.handshakes);
    state.counters["handshake_bytes"] = static_cast<double>(
        traffic.inter_site.handshake_bytes +
        traffic.intra_site.handshake_bytes);

    // Modelled WAN/LAN time on 2003-era links for the same traffic.
    sim::TrafficSummary wan;
    wan.messages = traffic.inter_site.messages;
    wan.bytes = traffic.inter_site.wire_bytes;
    wan.crypto_bytes = traffic.inter_site.crypto_bytes;
    sim::TrafficSummary lan;
    lan.messages = traffic.intra_site.messages;
    lan.bytes = traffic.intra_site.wire_bytes;
    lan.crypto_bytes = traffic.intra_site.crypto_bytes;
    state.counters["modelled_ms"] = static_cast<double>(
        sim::modelled_time(wan, sim::wan_link()) +
        sim::modelled_time(lan, sim::lan_link())) / 1000.0;

    grid->shutdown();
  }
}

}  // namespace

// args: sites, nodes_per_site, mode (0 = proxy tunneling, 1 = per-node)
BENCHMARK(BM_TunnelOverhead)
    ->Args({2, 2, 0})->Args({2, 2, 1})
    ->Args({2, 8, 0})->Args({2, 8, 1})
    ->Args({4, 4, 0})->Args({4, 4, 1})
    ->Args({4, 8, 0})->Args({4, 8, 1})
    ->Args({8, 2, 0})->Args({8, 2, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
