// E4 — control/monitoring overhead (§3): "This approach reduces the
// overhead in the control communication, since it is not always necessary
// to check the grid's overall status, but only that of some of the sites."
//
// Three strategies answer the same sequence of status requests (each
// needing k of S sites):
//   distributed pull — ask exactly the k sites involved (the paper design)
//   centralized poll — a coordinator polls every site every tick, requests
//                      read the coordinator's cache (Globus-MDS-like)
//   push broadcast   — every site pushes to every other site every tick
// Counters: inter-proxy control messages and node samples consumed.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace pgbench;

constexpr std::size_t kSites = 6;
constexpr std::size_t kNodesPerSite = 4;
constexpr int kTicks = 25;

std::uint64_t total_control_traffic(grid::Grid& grid) {
  std::uint64_t total = 0;
  for (const auto& site : grid.sites()) {
    const proxy::ProxyMetrics m = grid.proxy(site).metrics();
    total += m.control_calls_sent * 2 + m.control_notifies_sent;
  }
  return total;
}

std::uint64_t total_samples(grid::Grid& grid) {
  std::uint64_t total = 0;
  for (const auto& site : grid.sites()) {
    total += grid.proxy(site).collector().samples_taken();
  }
  return total;
}

/// The request trace: tick t needs the status of k(t) specific sites.
std::vector<std::vector<std::string>> request_trace(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::string>> trace;
  for (int t = 0; t < kTicks; ++t) {
    const std::size_t k = 1 + rng.next_below(2);  // 1 or 2 sites
    std::vector<std::string> sites;
    for (std::size_t i = 0; i < k; ++i) {
      sites.push_back("site" + std::to_string(rng.next_below(kSites)));
    }
    trace.push_back(std::move(sites));
  }
  return trace;
}

void BM_MonitoringDistributedPull(benchmark::State& state) {
  for (auto _ : state) {
    auto grid = make_bench_grid(kSites, kNodesPerSite);
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    const Bytes token = bench_login(*grid);
    const std::uint64_t baseline = total_control_traffic(*grid);

    for (const auto& wanted : request_trace(7)) {
      const auto reports = grid->status("site0", token, wanted);
      if (!reports.is_ok()) {
        state.SkipWithError("query failed");
        return;
      }
    }
    state.counters["control_msgs"] =
        static_cast<double>(total_control_traffic(*grid) - baseline);
    state.counters["node_samples"] =
        static_cast<double>(total_samples(*grid));
    grid->shutdown();
  }
}
BENCHMARK(BM_MonitoringDistributedPull)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MonitoringCentralizedPoll(benchmark::State& state) {
  for (auto _ : state) {
    auto grid = make_bench_grid(kSites, kNodesPerSite);
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    const Bytes token = bench_login(*grid);
    const std::uint64_t baseline = total_control_traffic(*grid);

    // Coordinator polls the whole grid every tick whether or not anyone
    // asks; requests are then served from its cache (not counted — they
    // would be one extra hop each for non-local consumers).
    for (const auto& wanted : request_trace(7)) {
      const auto reports = grid->status("site0", token, {});  // poll ALL
      if (!reports.is_ok()) {
        state.SkipWithError("poll failed");
        return;
      }
      (void)wanted;  // served from cache
    }
    state.counters["control_msgs"] =
        static_cast<double>(total_control_traffic(*grid) - baseline);
    state.counters["node_samples"] =
        static_cast<double>(total_samples(*grid));
    grid->shutdown();
  }
}
BENCHMARK(BM_MonitoringCentralizedPoll)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MonitoringPushBroadcast(benchmark::State& state) {
  for (auto _ : state) {
    auto grid = make_bench_grid(kSites, kNodesPerSite);
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    const std::uint64_t baseline = total_control_traffic(*grid);

    // Every site pushes its report to every peer on every tick; consumers
    // read their local cache for free.
    for (int t = 0; t < kTicks; ++t) {
      for (const auto& site : grid->sites()) {
        grid->proxy(site).push_status_to_peers();
      }
    }
    // Every proxy now holds a cached view of every other site.
    state.counters["cached_sites_at_site0"] =
        static_cast<double>(grid->proxy("site0").status_cache().size());
    state.counters["control_msgs"] =
        static_cast<double>(total_control_traffic(*grid) - baseline);
    state.counters["node_samples"] =
        static_cast<double>(total_samples(*grid));
    grid->shutdown();
  }
}
BENCHMARK(BM_MonitoringPushBroadcast)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
