// E1 — substrate calibration: throughput of every crypto primitive and the
// cost of a full GSSL handshake.
//
// Paper anchor: §3 uses OpenSSL for the secure channel; this bench
// establishes that our from-scratch substrate has the same cost structure
// (symmetric ops ≫ RSA op rate; handshake dominated by RSA).
#include <benchmark/benchmark.h>

#include <future>

#include "common/rng.hpp"
#include "crypto/cert.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "net/memory_channel.hpp"
#include "tls/gssl.hpp"

namespace {

using namespace pg;
using namespace pg::crypto;

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  const Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(2);
  const Bytes key = rng.next_bytes(32);
  const Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024)->Arg(64 * 1024);

void BM_ChaCha20(benchmark::State& state) {
  Rng rng(3);
  const Bytes key = rng.next_bytes(kChaChaKeySize);
  const Bytes nonce = rng.next_bytes(kChaChaNonceSize);
  Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ChaCha20 cipher(key, nonce, 0);
    cipher.process(data.data(), data.size());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(64)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

struct RsaEnv {
  Rng rng{42};
  RsaKeyPair keys;
  Bytes message = to_bytes("benchmark message for RSA signing");
  Bytes signature;
  explicit RsaEnv(std::size_t bits) : keys(rsa_generate(bits, rng)) {
    signature = rsa_sign(keys.priv, message);
  }
};

RsaEnv& rsa_env(std::size_t bits) {
  static RsaEnv env768(768);
  static RsaEnv env1024(1024);
  return bits == 768 ? env768 : env1024;
}

void BM_RsaSign(benchmark::State& state) {
  RsaEnv& env = rsa_env(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_sign(env.keys.priv, env.message));
  }
}
BENCHMARK(BM_RsaSign)->Arg(768)->Arg(1024);

void BM_RsaVerify(benchmark::State& state) {
  RsaEnv& env = rsa_env(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rsa_verify(env.keys.pub, env.message, env.signature));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(768)->Arg(1024);

void BM_RsaKeygen(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rsa_generate(static_cast<std::size_t>(state.range(0)), rng));
  }
}
BENCHMARK(BM_RsaKeygen)->Arg(512)->Arg(768)->Unit(benchmark::kMillisecond);

// Full mutual-auth GSSL handshake over an in-memory channel pair.
void BM_GsslHandshake(benchmark::State& state) {
  Rng rng(11);
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  CertificateAuthority ca("bench-ca", bits, rng);
  const RsaKeyPair client_keys = rsa_generate(bits, rng);
  const RsaKeyPair server_keys = rsa_generate(bits, rng);
  ManualClock clock(1000);

  const tls::GsslIdentity client_id{
      ca.issue("proxy.siteA", client_keys.pub, 0, 1'000'000'000),
      client_keys.priv};
  const tls::GsslIdentity server_id{
      ca.issue("proxy.siteB", server_keys.pub, 0, 1'000'000'000),
      server_keys.priv};
  const tls::GsslConfig client_cfg{client_id, ca.name(), ca.public_key(), ""};
  const tls::GsslConfig server_cfg{server_id, ca.name(), ca.public_key(), ""};

  for (auto _ : state) {
    net::ChannelPair pair = net::make_memory_channel_pair();
    Rng client_rng(1), server_rng(2);
    auto server = std::async(std::launch::async, [&] {
      return tls::gssl_server_handshake(*pair.b, server_cfg, clock,
                                        server_rng);
    });
    auto client =
        tls::gssl_client_handshake(*pair.a, client_cfg, clock, client_rng);
    auto server_session = server.get();
    benchmark::DoNotOptimize(client);
    benchmark::DoNotOptimize(server_session);
  }
}
BENCHMARK(BM_GsslHandshake)->Arg(512)->Arg(768)->Unit(benchmark::kMillisecond);

// Secured record throughput (cipher + MAC + framing) once the session is up.
void BM_GsslRecordThroughput(benchmark::State& state) {
  Rng rng(13);
  CertificateAuthority ca("bench-ca", 512, rng);
  const RsaKeyPair a_keys = rsa_generate(512, rng);
  const RsaKeyPair b_keys = rsa_generate(512, rng);
  ManualClock clock(1000);
  const tls::GsslConfig a_cfg{
      {ca.issue("a", a_keys.pub, 0, 1'000'000'000), a_keys.priv},
      ca.name(), ca.public_key(), ""};
  const tls::GsslConfig b_cfg{
      {ca.issue("b", b_keys.pub, 0, 1'000'000'000), b_keys.priv},
      ca.name(), ca.public_key(), ""};

  net::ChannelPair pair = net::make_memory_channel_pair();
  Rng a_rng(1), b_rng(2);
  auto server = std::async(std::launch::async, [&] {
    return tls::gssl_server_handshake(*pair.b, b_cfg, clock, b_rng);
  });
  auto client = tls::gssl_client_handshake(*pair.a, a_cfg, clock, a_rng);
  auto server_session = server.get();
  if (!client.is_ok() || !server_session.is_ok()) {
    state.SkipWithError("handshake failed");
    return;
  }

  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    if (!client.value()->send(payload).is_ok()) {
      state.SkipWithError("send failed");
      return;
    }
    auto received = server_session.value()->recv();
    benchmark::DoNotOptimize(received);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GsslRecordThroughput)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

}  // namespace

BENCHMARK_MAIN();
