// Sharded proxy tier scale-out (tentpole proof for docs/PERFORMANCE.md,
// "Sharded proxy tier").
//
// A closed-loop multi-user batch workload runs against one site served by
// 1, 2, and 4 proxy shards. Each user is pinned to a shard by the
// consistent-hash ring (grid::Grid::shard_for — the same placement every
// peer computes) and submits jobs back-to-back; a job is a fixed "think"
// application, so the work per job is identical across configurations and
// the bottleneck is the per-shard proxy (its job-runner pool), not the
// machine's core count. Aggregate throughput must scale near-linearly
// with the shard count while per-job p99 latency stays flat or better —
// CI gates >=1.7x jobs/s at 2 shards with p99 within 1.3x of 1 shard.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace pgbench;

constexpr int kUsers = 24;
constexpr int kJobsPerUser = 4;
constexpr int kThinkMillis = 30;

/// A job whose cost is wall time, not CPU: the per-shard runner pool is
/// the resource under test, and sleeping jobs keep the result honest on
/// single-core CI machines.
void register_think_app() {
  static const bool done = [] {
    mpi::AppRegistry::instance().register_app(
        "think", [](mpi::Comm&) -> Status {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(kThinkMillis));
          return Status::ok();
        });
    return true;
  }();
  (void)done;
}

void BM_ShardedJobThroughput(benchmark::State& state) {
  register_think_app();
  const auto shards = static_cast<std::uint32_t>(state.range(0));

  grid::GridBuilder builder;
  builder.seed(11).key_bits(512);
  builder.add_site("site0", shards);
  builder.add_nodes("site0", 8);
  builder.add_user("bench", "pw", {"mpi.run", "status.query", "job.submit"});
  auto built = builder.build();
  if (!built.is_ok()) {
    state.SkipWithError("grid build failed");
    return;
  }
  auto grid = built.take();
  const Bytes token = bench_login(*grid);
  if (token.empty()) {
    state.SkipWithError("login failed");
    return;
  }

  // Warm every shard's job path once so the measured loop sees a steady
  // state (status caches filled, links and schedulers exercised).
  for (const std::string& shard : grid->site_shards("site0")) {
    auto id = grid->proxy(shard).submit_job("bench", token, "think", 1,
                                            sched::Policy::kLoadBalanced);
    if (!id.is_ok() || !grid->proxy(shard).wait_job(id.value()).is_ok()) {
      state.SkipWithError("warmup job failed");
      return;
    }
  }

  std::vector<double> latencies_ms(kUsers * kJobsPerUser, 0.0);
  for (auto _ : state) {
    std::atomic<bool> failed{false};
    std::vector<std::thread> users;
    users.reserve(kUsers);
    for (int u = 0; u < kUsers; ++u) {
      users.emplace_back([&, u] {
        WallClock wall;
        for (int j = 0; j < kJobsPerUser; ++j) {
          // Ring placement maps each app session to a shard — the same
          // home every peer computes without coordination.
          const std::string home = grid->shard_for(
              "site0",
              "user" + std::to_string(u) + "-job" + std::to_string(j));
          if (home.empty()) {
            failed.store(true);
            return;
          }
          auto& home_proxy = grid->proxy(home);
          const TimeMicros start = wall.now();
          auto id = home_proxy.submit_job("bench", token, "think", 1,
                                          sched::Policy::kLoadBalanced);
          if (!id.is_ok()) {
            failed.store(true);
            return;
          }
          auto record =
              home_proxy.wait_job(id.value(), 60 * kMicrosPerSecond);
          if (!record.is_ok() ||
              record.value().state != proxy::JobState::kSucceeded) {
            failed.store(true);
            return;
          }
          latencies_ms[u * kJobsPerUser + j] =
              static_cast<double>(wall.now() - start) / 1000.0;
        }
      });
    }
    for (auto& t : users) t.join();
    if (failed.load()) {
      state.SkipWithError("job failed mid-measurement");
      return;
    }
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  state.counters["p99_ms"] =
      latencies_ms[latencies_ms.size() * 99 / 100];
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(kUsers * kJobsPerUser) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  grid->shutdown();
}
BENCHMARK(BM_ShardedJobThroughput)
    ->Iterations(1)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
