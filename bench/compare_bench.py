#!/usr/bin/env python3
"""Compare a fresh google-benchmark JSON run against a committed baseline.

Usage: compare_bench.py <committed.json> <current.json> [max_slowdown]

The committed file may be either a raw google-benchmark dump or the
combined {"baseline": ..., "optimized": ...} format written to
bench/results/; the "optimized" section is used when present. Fails
(exit 1) if any benchmark present in both files is more than
`max_slowdown` times slower (by bytes_per_second, falling back to
real_time) than the committed reference. Benchmarks that appear in only
one file are reported but do not fail the run.
"""

import json
import sys


def load_benchmarks(path, prefer_optimized):
    with open(path) as f:
        doc = json.load(f)
    if prefer_optimized and "optimized" in doc:
        doc = doc["optimized"]
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = bench
    return out


def throughput(bench):
    # Higher is better. bytes_per_second when the benchmark reports it,
    # otherwise inverse time.
    bps = bench.get("bytes_per_second")
    if bps:
        return float(bps)
    real = float(bench.get("real_time", 0.0))
    return 1.0 / real if real > 0 else 0.0


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    committed = load_benchmarks(argv[1], prefer_optimized=True)
    current = load_benchmarks(argv[2], prefer_optimized=False)
    max_slowdown = float(argv[3]) if len(argv) > 3 else 3.0

    failures = []
    for name, ref in sorted(committed.items()):
        cur = current.get(name)
        if cur is None:
            print(f"  [skip] {name}: not in current run")
            continue
        ref_tp, cur_tp = throughput(ref), throughput(cur)
        if ref_tp <= 0 or cur_tp <= 0:
            print(f"  [skip] {name}: no usable throughput")
            continue
        slowdown = ref_tp / cur_tp
        status = "FAIL" if slowdown > max_slowdown else "ok"
        print(f"  [{status:>4}] {name}: {cur_tp / 1e6:8.1f} MB/s "
              f"vs committed {ref_tp / 1e6:8.1f} MB/s "
              f"({slowdown:.2f}x slower)")
        if slowdown > max_slowdown:
            failures.append(name)

    for name in sorted(set(current) - set(committed)):
        print(f"  [new ] {name}: no committed reference")

    if failures:
        print(f"{len(failures)} benchmark(s) regressed more than "
              f"{max_slowdown}x: {', '.join(failures)}")
        return 1
    print("benchmark comparison passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
