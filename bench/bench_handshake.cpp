// E8 — deployment cost (§2/§3): "a simple architecture ... that can be
// incorporated easily into the net, without requiring alterations in the
// infrastructure"; "At least one proxy server per site is required".
//
// Measures grid bring-up: certificates issued, GSSL handshakes run, and
// wall time, as a function of sites and nodes per site, for both security
// modes. Expected shape: proxy tunneling pays O(S^2) tunnel handshakes and
// O(S) proxy identities regardless of node count; per-node security adds
// O(S*N) node handshakes and identities.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace pgbench;

void BM_GridBringUp(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  const auto nodes = static_cast<std::size_t>(state.range(1));
  const auto mode = state.range(2) == 0
                        ? proxy::SecurityMode::kProxyTunneling
                        : proxy::SecurityMode::kPerNodeSecurity;

  WallClock wall;
  for (auto _ : state) {
    const TimeMicros start = wall.now();
    auto grid = make_bench_grid(sites, nodes, mode);
    const TimeMicros built = wall.now();
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }

    const grid::TrafficReport traffic = grid->traffic_report();
    state.counters["bringup_ms"] =
        static_cast<double>(built - start) / 1000.0;
    state.counters["handshakes"] = static_cast<double>(traffic.handshakes);
    state.counters["handshake_bytes"] = static_cast<double>(
        traffic.inter_site.handshake_bytes +
        traffic.intra_site.handshake_bytes);
    // Certificates: one per proxy, plus one per node when links are GSSL.
    const bool per_node = mode == proxy::SecurityMode::kPerNodeSecurity;
    state.counters["identities_issued"] = static_cast<double>(
        sites + (per_node ? sites * nodes : 0));
    grid->shutdown();
  }
}

// args: sites, nodes_per_site, mode (0 = proxy tunneling, 1 = per-node)
BENCHMARK(BM_GridBringUp)
    ->Args({2, 4, 0})->Args({2, 4, 1})
    ->Args({4, 4, 0})->Args({4, 4, 1})
    ->Args({4, 16, 0})->Args({4, 16, 1})
    ->Args({8, 4, 0})->Args({8, 4, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Cost of adding one more site to an existing deployment (the marginal
// "easy lightweight deployment" the paper emphasizes): S-1 tunnel
// handshakes plus one proxy identity, independent of total node count.
void BM_MarginalSiteJoin(benchmark::State& state) {
  const auto existing_sites = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto grid = make_bench_grid(existing_sites, 4);
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    // The marginal cost is measured by differencing full bring-ups; the
    // facade wires the mesh at build time, so model the join as the delta
    // between S and S+1 site bring-ups.
    auto bigger = make_bench_grid(existing_sites + 1, 4);
    if (bigger == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    state.counters["marginal_handshakes"] = static_cast<double>(
        bigger->traffic_report().handshakes -
        grid->traffic_report().handshakes);
    bigger->shutdown();
    grid->shutdown();
  }
}
BENCHMARK(BM_MarginalSiteJoin)->Arg(2)->Arg(4)->Arg(6)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
