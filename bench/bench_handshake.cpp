// E8 — deployment cost (§2/§3): "a simple architecture ... that can be
// incorporated easily into the net, without requiring alterations in the
// infrastructure"; "At least one proxy server per site is required".
//
// Measures grid bring-up: certificates issued, GSSL handshakes run, and
// wall time, as a function of sites and nodes per site, for both security
// modes. Expected shape: proxy tunneling pays O(S^2) tunnel handshakes and
// O(S) proxy identities regardless of node count; per-node security adds
// O(S*N) node handshakes and identities.
#include <benchmark/benchmark.h>

#include <future>

#include "bench_util.hpp"
#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "crypto/cert.hpp"
#include "net/memory_channel.hpp"
#include "tls/gssl.hpp"
#include "tls/resumption.hpp"

namespace {

using namespace pgbench;

void BM_GridBringUp(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  const auto nodes = static_cast<std::size_t>(state.range(1));
  const auto mode = state.range(2) == 0
                        ? proxy::SecurityMode::kProxyTunneling
                        : proxy::SecurityMode::kPerNodeSecurity;

  WallClock wall;
  for (auto _ : state) {
    const TimeMicros start = wall.now();
    auto grid = make_bench_grid(sites, nodes, mode);
    const TimeMicros built = wall.now();
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }

    const grid::TrafficReport traffic = grid->traffic_report();
    state.counters["bringup_ms"] =
        static_cast<double>(built - start) / 1000.0;
    state.counters["handshakes"] = static_cast<double>(traffic.handshakes);
    state.counters["handshake_bytes"] = static_cast<double>(
        traffic.inter_site.handshake_bytes +
        traffic.intra_site.handshake_bytes);
    // Certificates: one per proxy, plus one per node when links are GSSL.
    const bool per_node = mode == proxy::SecurityMode::kPerNodeSecurity;
    state.counters["identities_issued"] = static_cast<double>(
        sites + (per_node ? sites * nodes : 0));
    grid->shutdown();
  }
}

// args: sites, nodes_per_site, mode (0 = proxy tunneling, 1 = per-node)
BENCHMARK(BM_GridBringUp)
    ->Args({2, 4, 0})->Args({2, 4, 1})
    ->Args({4, 4, 0})->Args({4, 4, 1})
    ->Args({4, 16, 0})->Args({4, 16, 1})
    ->Args({8, 4, 0})->Args({8, 4, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Single-connection GSSL setup cost: full handshake (2 RTT, RSA sign +
// RSA decrypt) versus ticket resumption (1 RTT, symmetric crypto only).
// This is the per-reconnect price auto-reconnect pays after a link flap,
// so the resumed/full ratio is the headline number for link healing.
tls::GsslIdentity bench_identity(crypto::CertificateAuthority& ca, Rng& rng,
                                 const std::string& subject,
                                 std::size_t bits) {
  const crypto::RsaKeyPair keys = crypto::rsa_generate(bits, rng);
  return tls::GsslIdentity{ca.issue(subject, keys.pub, 0, 1'000'000'000),
                           keys.priv};
}

void BM_GsslConnectionSetup(benchmark::State& state) {
  constexpr std::size_t kBits = 768;
  const bool resumed = state.range(0) == 1;
  static Rng* rng = new Rng(2024);
  static auto* ca = new crypto::CertificateAuthority("bench-ca", kBits, *rng);
  static auto* client_id = new tls::GsslIdentity(
      bench_identity(*ca, *rng, "proxy.siteA.grid", kBits));
  static auto* server_id = new tls::GsslIdentity(
      bench_identity(*ca, *rng, "proxy.siteB.grid", kBits));

  tls::ResumptionKeeper keeper(to_bytes("bench-realm-ticket-key"),
                               3600 * kMicrosPerSecond);
  tls::ResumptionStore store;
  tls::GsslConfig client_cfg{*client_id, ca->name(), ca->public_key(),
                             "proxy.siteB.grid"};
  tls::GsslConfig server_cfg{*server_id, ca->name(), ca->public_key(),
                             "proxy.siteA.grid"};
  if (resumed) {
    client_cfg.resumption_store = &store;
    server_cfg.resumption = &keeper;
  }
  ManualClock clock(1000);
  Rng client_rng(7), server_rng(8);

  const auto run_once = [&](bool require_resumed) -> bool {
    net::ChannelPair pair = net::make_memory_channel_pair();
    auto server_future = std::async(std::launch::async, [&] {
      return tls::gssl_server_handshake(*pair.b, server_cfg, clock,
                                        server_rng);
    });
    Result<tls::GsslSessionPtr> client_result =
        tls::gssl_client_handshake(*pair.a, client_cfg, clock, client_rng);
    Result<tls::GsslSessionPtr> server_result = server_future.get();
    if (!client_result.is_ok() || !server_result.is_ok()) return false;
    const tls::GsslSessionPtr client = client_result.take();
    return !require_resumed || client->stats().resumed;
  };

  // Prime the ticket cache with one (unmeasured) full handshake; every
  // measured iteration then resumes, each refreshing the cached ticket.
  if (resumed && !run_once(/*require_resumed=*/false)) {
    state.SkipWithError("priming handshake failed");
    return;
  }
  for (auto _ : state) {
    if (!run_once(/*require_resumed=*/resumed)) {
      state.SkipWithError("handshake failed");
      return;
    }
  }
}

// arg: 0 = full handshake, 1 = ticket resumption
BENCHMARK(BM_GsslConnectionSetup)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// Cost of adding one more site to an existing deployment (the marginal
// "easy lightweight deployment" the paper emphasizes): S-1 tunnel
// handshakes plus one proxy identity, independent of total node count.
void BM_MarginalSiteJoin(benchmark::State& state) {
  const auto existing_sites = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto grid = make_bench_grid(existing_sites, 4);
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    // The marginal cost is measured by differencing full bring-ups; the
    // facade wires the mesh at build time, so model the join as the delta
    // between S and S+1 site bring-ups.
    auto bigger = make_bench_grid(existing_sites + 1, 4);
    if (bigger == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    state.counters["marginal_handshakes"] = static_cast<double>(
        bigger->traffic_report().handshakes -
        grid->traffic_report().handshakes);
    bigger->shutdown();
    grid->shutdown();
  }
}
BENCHMARK(BM_MarginalSiteJoin)->Arg(2)->Arg(4)->Arg(6)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
