// Resilience-layer cost: what the fault-tolerant fabric charges when
// nothing is failing, and what it buys when something is.
//
// BM_ResilienceFailureFreeOverhead runs the same control-plane workload
// (grid-wide status queries, which fan out over every inter-proxy link)
// on two grids: a bare one, and one carrying the full resilience stack —
// FaultyChannel wrappers (at rest), heartbeats, and the retry-wrapped
// call path. The overhead_pct counter is the headline number; the budget
// is <2% on the failure-free path.
//
// BM_RetryAbsorbsDrops puts real drops on the node links and shows the
// retry + re-dispatch machinery converting them into successful jobs.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "net/faulty_channel.hpp"

namespace {

using namespace pgbench;

constexpr int kQueries = 200;

double time_queries(grid::Grid& grid, const Bytes& token, int queries) {
  WallClock wall;
  const TimeMicros start = wall.now();
  for (int i = 0; i < queries; ++i) {
    const auto reports = grid.status("site0", token, {});
    if (!reports.is_ok() || reports.value().size() != 3) return -1.0;
  }
  return static_cast<double>(wall.now() - start);
}

void BM_ResilienceFailureFreeOverhead(benchmark::State& state) {
  register_bench_apps();
  for (auto _ : state) {
    auto bare = make_bench_grid(3, 2);
    if (bare == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }

    grid::GridBuilder builder;
    builder.seed(1).key_bits(512).fault_injection();
    for (std::size_t s = 0; s < 3; ++s) {
      builder.add_nodes("site" + std::to_string(s), 2);
    }
    builder.add_user("bench", "pw", {"mpi.run", "status.query", "job.submit"});
    builder.configure_proxy([](proxy::ProxyConfig& config) {
      config.heartbeat_interval = 50 * kMicrosPerMilli;
    });
    auto built = builder.build();
    if (!built.is_ok()) {
      state.SkipWithError("resilient grid build failed");
      return;
    }
    auto resilient = built.take();

    const Bytes bare_token = bench_login(*bare);
    const Bytes res_token = bench_login(*resilient);

    // Warm both paths, then measure.
    (void)time_queries(*bare, bare_token, 20);
    (void)time_queries(*resilient, res_token, 20);
    const double bare_us = time_queries(*bare, bare_token, kQueries);
    const double res_us = time_queries(*resilient, res_token, kQueries);
    if (bare_us <= 0 || res_us <= 0) {
      state.SkipWithError("status query failed mid-measurement");
      return;
    }

    state.counters["bare_us_per_query"] = bare_us / kQueries;
    state.counters["resilient_us_per_query"] = res_us / kQueries;
    state.counters["overhead_pct"] = (res_us / bare_us - 1.0) * 100.0;
    bare->shutdown();
    resilient->shutdown();
  }
}
BENCHMARK(BM_ResilienceFailureFreeOverhead)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_RetryAbsorbsDrops(benchmark::State& state) {
  register_bench_apps();
  for (auto _ : state) {
    grid::GridBuilder builder;
    builder.seed(2).key_bits(512).fault_injection();
    builder.add_nodes("site0", 3);
    builder.add_user("bench", "pw", {"mpi.run", "status.query", "job.submit"});
    builder.configure_proxy([](proxy::ProxyConfig& config) {
      config.job_max_attempts = 3;
      config.job_run_timeout = 2 * kMicrosPerSecond;
      config.retry.per_try_timeout = 500 * kMicrosPerMilli;
      config.retry.initial_backoff = 5 * kMicrosPerMilli;
    });
    auto built = builder.build();
    if (!built.is_ok()) {
      state.SkipWithError("grid build failed");
      return;
    }
    auto grid = built.take();
    const Bytes token = bench_login(*grid);

    net::FaultPolicy drops;
    drops.drop_rate = 0.05;
    grid->intra_site_injector()->set_policy(drops);

    constexpr int kJobs = 5;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < kJobs; ++i) {
      const auto id = grid->proxy("site0").submit_job(
          "bench", token, "burn", 3, sched::Policy::kLoadBalanced);
      if (id.is_ok()) ids.push_back(id.value());
    }
    int succeeded = 0;
    for (const std::uint64_t id : ids) {
      const auto record =
          grid->proxy("site0").wait_job(id, 30 * kMicrosPerSecond);
      if (record.is_ok() &&
          record.value().state == proxy::JobState::kSucceeded) {
        ++succeeded;
      }
    }
    state.counters["jobs"] = kJobs;
    state.counters["jobs_succeeded"] = succeeded;
    state.counters["frames_dropped"] =
        static_cast<double>(grid->intra_site_injector()->dropped());
    state.counters["rpc_retries"] =
        static_cast<double>(grid->proxy("site0").metrics().retries);

    grid->intra_site_injector()->set_policy({});
    grid->shutdown();
  }
}
BENCHMARK(BM_RetryAbsorbsDrops)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
