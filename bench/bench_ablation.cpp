// Ablations of the design choices DESIGN.md calls out:
//
//  A1  explicit-secure node fraction: the paper lets individual nodes opt
//      into an encrypted link ("explicit call"); sweep the fraction of
//      secure nodes from 0% to 100% and watch intra-site crypto cost rise —
//      per-node security is just the 100% end point.
//  A2  dynamic scheduling with feedback: a job STREAM through the
//      discrete-event simulator, where each decision sees the load the
//      previous ones created (mean completion time, RR vs LB).
//  A3  virtual-slave fan-out: how much inter-site traffic the proxy
//      multiplexes per application as ranks-per-site grows (the cost of
//      the "single virtual cluster" illusion).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sched/des.hpp"
#include "sim/workload.hpp"

namespace {

using namespace pgbench;

// ------------------------------------------------------------------- A1

void BM_ExplicitSecureFraction(benchmark::State& state) {
  const int secure_out_of_4 = static_cast<int>(state.range(0));

  app_params().message_bytes.store(2048);
  app_params().iterations.store(8);

  for (auto _ : state) {
    register_bench_apps();
    grid::GridBuilder builder;
    builder.seed(3).key_bits(512);
    for (int i = 0; i < 4; ++i) {
      monitor::NodeProfile profile;
      profile.name = "node" + std::to_string(i);
      builder.add_node("site0", profile, /*explicit_secure=*/i < secure_out_of_4);
    }
    builder.add_nodes("site1", 4);
    builder.add_user("bench", "pw", {"mpi.run", "status.query"});
    auto built = builder.build();
    if (!built.is_ok()) {
      state.SkipWithError("grid build failed");
      return;
    }
    auto grid = built.take();
    const Bytes token = bench_login(*grid);
    const auto result = grid->run_app("site0", "bench", token, "stencil", 8,
                                      grid::SchedulerPolicy::kRoundRobin);
    if (!result.status.is_ok()) {
      state.SkipWithError(result.status.to_string().c_str());
      return;
    }
    const grid::TrafficReport traffic = grid->traffic_report();
    state.counters["intrasite_crypto_bytes"] =
        static_cast<double>(traffic.intra_site.crypto_bytes);
    state.counters["intersite_crypto_bytes"] =
        static_cast<double>(traffic.inter_site.crypto_bytes);
    state.counters["handshakes"] = static_cast<double>(traffic.handshakes);
    grid->shutdown();
  }
}
BENCHMARK(BM_ExplicitSecureFraction)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------------- A2

void BM_DynamicScheduling(benchmark::State& state) {
  const double speed_ratio = static_cast<double>(state.range(0));
  const auto mean_interarrival =
      static_cast<pg::TimeMicros>(state.range(1)) * 1000;  // ms -> us

  const auto nodes = sim::generate_uniform_grid(4, 4, speed_ratio, 77);
  const auto jobs =
      sched::generate_job_stream(200, mean_interarrival, 2, 8, 1.0, 4.0, 99);

  auto rr = sched::make_round_robin_scheduler();
  auto lb = sched::make_load_balanced_scheduler();

  for (auto _ : state) {
    const sched::DesResult rr_result =
        sched::simulate_dynamic_schedule(nodes, jobs, *rr);
    const sched::DesResult lb_result =
        sched::simulate_dynamic_schedule(nodes, jobs, *lb);
    state.counters["rr_mean_completion_s"] = rr_result.mean_completion_seconds;
    state.counters["lb_mean_completion_s"] = lb_result.mean_completion_seconds;
    state.counters["rr_p95_s"] = rr_result.p95_completion_seconds;
    state.counters["lb_p95_s"] = lb_result.p95_completion_seconds;
    state.counters["lb_win_pct"] =
        rr_result.mean_completion_seconds > 0
            ? 100.0 *
                  (rr_result.mean_completion_seconds -
                   lb_result.mean_completion_seconds) /
                  rr_result.mean_completion_seconds
            : 0;
  }
}
// args: speed_ratio, mean interarrival (ms)
BENCHMARK(BM_DynamicScheduling)
    ->Args({1, 500})
    ->Args({2, 500})
    ->Args({4, 500})
    ->Args({4, 250})   // heavier load
    ->Args({4, 1000})  // lighter load
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------------- A3

void BM_VirtualSlaveFanOut(benchmark::State& state) {
  const auto ranks_per_site = static_cast<std::size_t>(state.range(0));
  app_params().iterations.store(16);

  for (auto _ : state) {
    auto grid = make_bench_grid(2, ranks_per_site);
    if (grid == nullptr) {
      state.SkipWithError("grid build failed");
      return;
    }
    const Bytes token = bench_login(*grid);
    const auto ranks = static_cast<std::uint32_t>(2 * ranks_per_site);
    const auto result = grid->run_app("site0", "bench", token, "allreduce",
                                      ranks, grid::SchedulerPolicy::kRoundRobin);
    if (!result.status.is_ok()) {
      state.SkipWithError(result.status.to_string().c_str());
      return;
    }
    std::uint64_t remote_msgs = 0, remote_bytes = 0, local_msgs = 0;
    for (const auto& site : grid->sites()) {
      const proxy::ProxyMetrics m = grid->proxy(site).metrics();
      remote_msgs += m.mpi_messages_remote;
      remote_bytes += m.mpi_bytes_remote;
      local_msgs += m.mpi_messages_local;
    }
    state.counters["intersite_mpi_msgs"] = static_cast<double>(remote_msgs);
    state.counters["intersite_mpi_bytes"] = static_cast<double>(remote_bytes);
    state.counters["intrasite_mpi_msgs"] = static_cast<double>(local_msgs);
    grid->shutdown();
  }
}
BENCHMARK(BM_VirtualSlaveFanOut)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
