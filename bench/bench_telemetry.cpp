// Telemetry overhead microbenchmarks. The registry sits on the MPI routing
// hot path, so the acceptance bar is hard: a counter increment must stay
// within tens of nanoseconds (single- and multi-threaded), and histogram
// observes / span start+end must be cheap enough for per-envelope use.
#include <benchmark/benchmark.h>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {

using pg::telemetry::Counter;
using pg::telemetry::Histogram;
using pg::telemetry::MetricRegistry;
using pg::telemetry::Span;
using pg::telemetry::Tracer;

void BM_CounterIncrement(benchmark::State& state) {
  static Counter counter;
  for (auto _ : state) {
    counter.increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncrement);
BENCHMARK(BM_CounterIncrement)->Threads(4)->UseRealTime();
BENCHMARK(BM_CounterIncrement)->Threads(8)->UseRealTime();

void BM_CounterIncrementRegistryBacked(benchmark::State& state) {
  // The production pattern: reference resolved once, increments after.
  Counter& counter = MetricRegistry::global().counter(
      "bench_counter_total", "bench", {{"site", "bench"}});
  for (auto _ : state) {
    counter.increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncrementRegistryBacked);

void BM_HistogramObserve(benchmark::State& state) {
  static Histogram histogram(pg::telemetry::duration_buckets_micros());
  double value = 0.5;
  for (auto _ : state) {
    histogram.observe(value);
    value = value < 1e6 ? value * 1.1 : 0.5;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);
BENCHMARK(BM_HistogramObserve)->Threads(4)->UseRealTime();

void BM_SpanStartEnd(benchmark::State& state) {
  Tracer tracer;
  for (auto _ : state) {
    Span span = tracer.start_span("bench.span");
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanStartEnd);

void BM_PrometheusExport(benchmark::State& state) {
  MetricRegistry registry;
  for (int i = 0; i < 32; ++i) {
    registry.counter("bench_export_total", "bench",
                     {{"op", "op" + std::to_string(i)}})
        .increment(i);
  }
  registry.histogram("bench_export_micros", "bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.to_prometheus());
  }
}
BENCHMARK(BM_PrometheusExport);

}  // namespace

BENCHMARK_MAIN();
